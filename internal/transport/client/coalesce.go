package client

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/transport/wire"
)

// errShortBatch reports a batch response with fewer results than
// requests — a server contract violation surfaced per caller rather
// than silently dropped.
var errShortBatch = errors.New("client: batch response shorter than request")

// coalescer micro-batches Run calls. The first Run of a quiet period
// opens a linger window of Options.CoalesceWindow; every Run arriving
// before it closes joins the same pending batch, which ships as one
// /v1/batch POST when the window fires or the batch reaches
// CoalesceMax, whichever is first. Each caller gets its own item's
// response or error back, so the batching is invisible except as up to
// one window of added latency.
type coalescer struct {
	c  *Client
	mu sync.Mutex
	// pending is the open batch; armed reports whether a window timer
	// is counting down to flush it.
	pending []coItem
	armed   bool
}

type coItem struct {
	req wire.RunRequest
	ch  chan coResult
}

type coResult struct {
	resp *wire.RunResponse
	err  error
}

func newCoalescer(c *Client) *coalescer {
	return &coalescer{c: c}
}

// run enqueues one request and waits for its item result.
func (co *coalescer) run(ctx context.Context, req wire.RunRequest) (*wire.RunResponse, error) {
	ch := make(chan coResult, 1)
	co.mu.Lock()
	co.pending = append(co.pending, coItem{req: req, ch: ch})
	if len(co.pending) >= co.c.opts.CoalesceMax {
		batch := co.pending
		co.pending = nil
		co.mu.Unlock()
		go co.flush(batch)
	} else {
		if !co.armed {
			co.armed = true
			time.AfterFunc(co.c.opts.CoalesceWindow, co.onWindow)
		}
		co.mu.Unlock()
	}
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-ctx.Done():
		// The batch still runs server-side; only this caller stops
		// waiting. The 1-buffered channel lets flush deliver and move on.
		return nil, ctx.Err()
	}
}

// onWindow fires when the linger window closes.
func (co *coalescer) onWindow() {
	co.mu.Lock()
	co.armed = false
	batch := co.pending
	co.pending = nil
	co.mu.Unlock()
	if len(batch) > 0 {
		co.flush(batch)
	}
}

// flush ships one batch and fans results back out to the callers. It
// runs under context.Background(): the batch serves many callers, so
// no single caller's cancellation may abort it.
func (co *coalescer) flush(batch []coItem) {
	reqs := make([]wire.RunRequest, len(batch))
	for i := range batch {
		reqs[i] = batch[i].req
	}
	bresp, err := co.c.RunBatch(context.Background(), reqs)
	if err != nil {
		for _, it := range batch {
			it.ch <- coResult{err: err}
		}
		return
	}
	for i, it := range batch {
		switch {
		case i >= len(bresp.Results):
			it.ch <- coResult{err: errShortBatch}
		case bresp.Results[i].Error != nil:
			it.ch <- coResult{err: Err(bresp.Results[i])}
		default:
			r := *bresp.Results[i].Response
			it.ch <- coResult{resp: &r}
		}
	}
}

package client

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/transport/wire"
)

// dialCountingClient builds an http.Client tuned the way New does by
// default, with DialContext hooked to count physical connections.
func dialCountingClient(concurrency int) (*http.Client, *atomic.Int64) {
	var dials atomic.Int64
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = concurrency
	if tr.MaxIdleConns < concurrency {
		tr.MaxIdleConns = concurrency
	}
	var d net.Dialer
	tr.DialContext = func(ctx context.Context, network, addr string) (net.Conn, error) {
		dials.Add(1)
		return d.DialContext(ctx, network, addr)
	}
	return &http.Client{Transport: tr}, &dials
}

// TestConnectionReuseAcrossPaths is the keep-alive regression test:
// success responses, error responses, and metrics fetches must all
// drain their bodies, so a serial workload mixing them uses exactly
// one connection.
func TestConnectionReuseAcrossPaths(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/run":
			var req wire.RunRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				t.Errorf("bad body: %v", err)
			}
			if req.Inputs["h"] == 99 {
				w.WriteHeader(http.StatusTooManyRequests)
				json.NewEncoder(w).Encode(map[string]*wire.Error{
					"error": {Code: wire.CodeLeakageBudget, Message: "budget"},
				})
				return
			}
			json.NewEncoder(w).Encode(wire.RunResponse{SchemaVersion: wire.SchemaVersion, Time: 7})
		case "/v1/metrics":
			w.Write([]byte(`{"schema_version":3}`))
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()

	hc, dials := dialCountingClient(4)
	c := New(ts.URL, Options{HTTPClient: hc})

	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := c.Run(ctx, wire.RunRequest{Inputs: map[string]int64{"h": 1}}); err != nil {
			t.Fatal(err)
		}
	}
	// Error path: the 429 body must be drained too.
	if _, err := c.Run(ctx, wire.RunRequest{Inputs: map[string]int64{"h": 99}}); err == nil {
		t.Fatal("want error from 429")
	}
	if _, err := c.Metrics(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Run(ctx, wire.RunRequest{Inputs: map[string]int64{"h": 2}}); err != nil {
			t.Fatal(err)
		}
	}

	if n := dials.Load(); n != 1 {
		t.Errorf("serial workload dialed %d times, want 1 (a leaked body kills keep-alive)", n)
	}
}

// TestDefaultTransportTuned: New without an explicit HTTPClient must
// size the idle pool to Concurrency so fan-out does not thrash dials.
func TestDefaultTransportTuned(t *testing.T) {
	c := New("http://localhost:0", Options{Concurrency: 32})
	tr, ok := c.opts.HTTPClient.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("default client transport is %T", c.opts.HTTPClient.Transport)
	}
	if tr.MaxIdleConnsPerHost != 32 {
		t.Errorf("MaxIdleConnsPerHost = %d, want 32", tr.MaxIdleConnsPerHost)
	}
	if tr.MaxIdleConns < 32 {
		t.Errorf("MaxIdleConns = %d, want >= 32", tr.MaxIdleConns)
	}
	if tr == http.DefaultTransport {
		t.Error("must clone, not mutate, http.DefaultTransport")
	}
}

package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/transport/wire"
)

// ndjsonEchoService is a minimal /v1/stream peer: it answers each
// request line with a result echoing the h input as Time, flushing per
// line like the real handler.
func ndjsonEchoService(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/stream" {
			http.NotFound(w, r)
			return
		}
		rc := http.NewResponseController(w)
		rc.EnableFullDuplex()
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		rc.Flush()
		sc := bufio.NewScanner(r.Body)
		enc := json.NewEncoder(w)
		for sc.Scan() {
			if len(sc.Bytes()) == 0 {
				continue
			}
			var req wire.RunRequest
			if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
				enc.Encode(wire.BatchResult{Error: &wire.Error{Code: wire.CodeInvalidRequest, Message: err.Error()}})
				rc.Flush()
				return
			}
			if req.Inputs["h"] == 666 {
				enc.Encode(wire.BatchResult{Error: &wire.Error{Code: wire.CodeBudgetExceeded, Message: "item"}})
			} else {
				enc.Encode(wire.BatchResult{Response: &wire.RunResponse{
					SchemaVersion: wire.SchemaVersion,
					Tenant:        req.Tenant,
					Time:          uint64(req.Inputs["h"]),
				}})
			}
			rc.Flush()
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestStreamPipelinesInOrder: send N, then receive N in order without
// closing the send side first — true pipelining, not batch-at-EOF.
func TestStreamPipelinesInOrder(t *testing.T) {
	ts := ndjsonEchoService(t)
	c := New(ts.URL, Options{Tenant: "alice"})

	s, err := c.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 10
	for i := 1; i <= n; i++ {
		if err := s.Send(wire.RunRequest{Inputs: map[string]int64{"h": int64(i)}}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// All results must arrive while the send side is still open.
	for i := 1; i <= n; i++ {
		res, err := s.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if res.Response == nil || res.Response.Time != uint64(i) {
			t.Fatalf("recv %d: out of order or failed: %+v", i, res)
		}
		if res.Response.Tenant != "alice" {
			t.Errorf("recv %d: default tenant not applied: %q", i, res.Response.Tenant)
		}
	}

	if err := s.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recv(); err != io.EOF {
		t.Fatalf("after CloseSend want io.EOF, got %v", err)
	}
}

// TestStreamPerItemErrors: an error line maps through Err to the same
// typed sentinels as batch items.
func TestStreamPerItemErrors(t *testing.T) {
	ts := ndjsonEchoService(t)
	c := New(ts.URL, Options{})

	s, err := c.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.Send(wire.RunRequest{Inputs: map[string]int64{"h": 666}}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if res.Error == nil {
		t.Fatalf("want error result, got %+v", res)
	}
	if !errors.Is(Err(*res), ErrBudgetExceeded) {
		t.Errorf("Err mapping = %v, want ErrBudgetExceeded", Err(*res))
	}
}

// TestStreamOpenError: a non-200 on stream open surfaces as a typed
// error, not a broken stream.
func TestStreamOpenError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Mirror the real handler: full duplex before refusing, so the
		// 503 is committed without first draining the still-open pipe
		// body (the client closes its side once it sees the refusal).
		http.NewResponseController(w).EnableFullDuplex()
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]*wire.Error{
			"error": {Code: wire.CodeShuttingDown, Message: "draining"},
		})
	}))
	defer ts.Close()

	c := New(ts.URL, Options{})
	_, err := c.Stream(context.Background())
	if !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("stream open error = %v, want ErrShuttingDown", err)
	}
}

package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/transport/wire"
)

// fakeService answers /v1/run with fail503 rejections before
// succeeding, counting attempts.
func fakeService(t *testing.T, fail503 int, code string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := attempts.Add(1)
		if int(n) <= fail503 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(struct {
				Error *wire.Error `json:"error"`
			}{&wire.Error{Code: code, Message: "go away", RetryAfterMS: 1000}})
			return
		}
		json.NewEncoder(w).Encode(wire.RunResponse{SchemaVersion: wire.SchemaVersion, Time: 512})
	}))
	t.Cleanup(ts.Close)
	return ts, &attempts
}

// TestRetryOn503IsDeterministic is the retry acceptance check: a
// client with a fixed seed retries overload rejections on exactly the
// backoff schedule the pool's own jitter formula prescribes.
func TestRetryOn503IsDeterministic(t *testing.T) {
	ts, attempts := fakeService(t, 2, wire.CodeOverloaded)
	const seed = 42
	c := New(ts.URL, Options{MaxRetries: 3, RetryBase: time.Millisecond, RetrySeed: seed})
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) bool {
		slept = append(slept, d)
		return true
	}

	resp, err := c.Run(context.Background(), wire.RunRequest{})
	if err != nil {
		t.Fatalf("Run = %v", err)
	}
	if resp.Time != 512 {
		t.Errorf("Time = %d", resp.Time)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (1 initial + 2 retries)", got)
	}

	// The delays must replay the pool's formula exactly: exponential
	// from RetryBase with jitter in [d/2, d] drawn from Mix64(seed, seq).
	want := make([]time.Duration, 2)
	for i := range want {
		d := time.Millisecond
		for k := 1; k < i+1; k++ {
			d *= 2
		}
		frac := float64(fault.Mix64(seed, uint64(i+1))>>11) / float64(1<<53)
		want[i] = d/2 + time.Duration(frac*float64(d/2))
	}
	if len(slept) != len(want) {
		t.Fatalf("slept %d times, want %d", len(slept), len(want))
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("backoff %d = %v, want %v", i, slept[i], want[i])
		}
		if slept[i] < time.Millisecond/2 || slept[i] > time.Millisecond<<uint(i) {
			t.Errorf("backoff %d = %v outside [base/2, base*2^i]", i, slept[i])
		}
	}

	// Same seed, fresh client: identical schedule (determinism).
	ts2, _ := fakeService(t, 2, wire.CodeOverloaded)
	c2 := New(ts2.URL, Options{MaxRetries: 3, RetryBase: time.Millisecond, RetrySeed: seed})
	var slept2 []time.Duration
	c2.sleep = func(ctx context.Context, d time.Duration) bool {
		slept2 = append(slept2, d)
		return true
	}
	if _, err := c2.Run(context.Background(), wire.RunRequest{}); err != nil {
		t.Fatal(err)
	}
	for i := range slept {
		if slept[i] != slept2[i] {
			t.Errorf("retry schedule not reproducible: %v vs %v", slept, slept2)
		}
	}
}

func TestRetriesExhaustedSurfacesTypedError(t *testing.T) {
	ts, attempts := fakeService(t, 100, wire.CodeOverloaded)
	c := New(ts.URL, Options{MaxRetries: 2, RetrySeed: 7})
	c.sleep = func(context.Context, time.Duration) bool { return true }
	_, err := c.Run(context.Background(), wire.RunRequest{})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var cerr *Error
	if !errors.As(err, &cerr) || cerr.Status != http.StatusServiceUnavailable {
		t.Errorf("typed error = %+v", cerr)
	}
	if cerr.RetryAfter != time.Second {
		t.Errorf("RetryAfter = %v, want 1s", cerr.RetryAfter)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
}

func TestShuttingDownIsNotRetried(t *testing.T) {
	ts, attempts := fakeService(t, 100, wire.CodeShuttingDown)
	c := New(ts.URL, Options{MaxRetries: 5, RetrySeed: 7})
	c.sleep = func(context.Context, time.Duration) bool { return true }
	_, err := c.Run(context.Background(), wire.RunRequest{})
	if !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("err = %v, want ErrShuttingDown", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("attempts = %d, want 1 (drain is terminal)", got)
	}
}

func TestErrorCodeMapping(t *testing.T) {
	for _, tc := range []struct {
		status int
		code   string
		want   error
	}{
		{http.StatusUnprocessableEntity, wire.CodeBudgetExceeded, ErrBudgetExceeded},
		{http.StatusBadRequest, wire.CodeUnknownInput, ErrInvalidRequest},
		{http.StatusBadRequest, wire.CodeInvalidRequest, ErrInvalidRequest},
		{http.StatusGatewayTimeout, wire.CodeDeadlineExceeded, context.DeadlineExceeded},
	} {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(tc.status)
			json.NewEncoder(w).Encode(struct {
				Error *wire.Error `json:"error"`
			}{&wire.Error{Code: tc.code, Message: "nope"}})
		}))
		c := New(ts.URL, Options{})
		_, err := c.Run(context.Background(), wire.RunRequest{})
		if !errors.Is(err, tc.want) {
			t.Errorf("code %s: err = %v, want %v", tc.code, err, tc.want)
		}
		ts.Close()
	}
}

func TestNonJSONErrorBodySurvives(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	defer ts.Close()
	c := New(ts.URL, Options{})
	_, err := c.Run(context.Background(), wire.RunRequest{})
	var cerr *Error
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v, want *Error", err)
	}
	if cerr.Status != http.StatusBadGateway || cerr.Code != wire.CodeInternal {
		t.Errorf("error = %+v", cerr)
	}
}

// Package client is the Go SDK for the mitigation service's HTTP API.
// It speaks the versioned wire schema (internal/transport/wire), maps
// wire errors back onto typed sentinels that mirror the server-side
// taxonomy (ErrOverloaded, ErrBudgetExceeded, ...), and transparently
// retries overload rejections with the same deterministic
// exponential-backoff-with-jitter scheme the pool itself uses, so a
// retrying client is exactly as reproducible as a retrying pool.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/transport/wire"
)

// Typed sentinels mirroring the service's error taxonomy. Wire errors
// unwrap to these, so callers use errors.Is exactly as they would
// against the in-process server package.
var (
	// ErrOverloaded: the service shed the request (mirrors
	// server.ErrOverloaded). Retried automatically when MaxRetries > 0.
	ErrOverloaded = errors.New("client: service overloaded")
	// ErrShuttingDown: the service is draining (mirrors
	// server.ErrPoolClosed). Never self-retried: a draining service
	// will not come back on this endpoint.
	ErrShuttingDown = errors.New("client: service shutting down")
	// ErrBudgetExceeded: the run exhausted the server-side step or
	// cycle budget (mirrors server.ErrBudgetExceeded).
	ErrBudgetExceeded = errors.New("client: execution budget exceeded")
	// ErrLeakageBudget: the tenant's cumulative leakage bound reached
	// the server's budget (mirrors session.ErrBudgetExceeded). Never
	// self-retried — the account only resets when the session expires,
	// so honor Error.RetryAfter instead of hammering the endpoint.
	ErrLeakageBudget = errors.New("client: tenant leakage budget exceeded")
	// ErrInvalidRequest: the service rejected the request as malformed
	// (bad JSON, unknown input name, wrong schema version).
	ErrInvalidRequest = errors.New("client: invalid request")
)

// Error is a failure reported by the service: the wire error plus its
// HTTP status. It unwraps to the matching sentinel above.
type Error struct {
	// Status is the HTTP status the service answered with.
	Status int
	// Code and Message are the wire error fields.
	Code    string
	Message string
	// RetryAfter is the service-advertised backoff, when given.
	RetryAfter time.Duration
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("client: %s (%s, HTTP %d)", e.Message, e.Code, e.Status)
}

// Unwrap maps the stable wire code onto the package sentinels.
func (e *Error) Unwrap() error {
	switch e.Code {
	case wire.CodeOverloaded:
		return ErrOverloaded
	case wire.CodeShuttingDown:
		return ErrShuttingDown
	case wire.CodeBudgetExceeded:
		return ErrBudgetExceeded
	case wire.CodeLeakageBudget:
		return ErrLeakageBudget
	case wire.CodeInvalidRequest, wire.CodeUnknownInput:
		return ErrInvalidRequest
	case wire.CodeDeadlineExceeded:
		return context.DeadlineExceeded
	case wire.CodeCanceled:
		return context.Canceled
	default:
		return nil
	}
}

// Options configure a Client.
type Options struct {
	// HTTPClient issues the requests; default http.DefaultClient.
	// Deadlines come from the per-call context, not from here.
	HTTPClient *http.Client
	// MaxRetries, when positive, transparently re-issues a request
	// rejected with ErrOverloaded up to this many extra attempts, with
	// exponential backoff and deterministic jitter between attempts —
	// the same scheme as server.PoolOptions.MaxRetries.
	MaxRetries int
	// RetryBase is the first backoff delay; it doubles each attempt
	// (capped at 100ms) with jitter in [delay/2, delay]. Default 1ms.
	RetryBase time.Duration
	// RetrySeed seeds the deterministic jitter sequence.
	RetrySeed int64
	// Tenant, when set, is the session every request runs under unless
	// the request names its own tenant: Run and RunBatch fill
	// RunRequest.Tenant with it when the field is empty. Sessions are a
	// schema-v2 feature; leave empty for anonymous (v1-style) calls.
	Tenant string
}

// Client talks to one mitigation service endpoint. Safe for concurrent
// use.
type Client struct {
	base string
	opts Options
	// retrySeq numbers backoff sleeps so jitter is a deterministic
	// function of (RetrySeed, sequence number), as in the pool.
	retrySeq atomic.Uint64
	// sleep parks between retry attempts; swapped out by tests to
	// observe the deterministic delay sequence without waiting it out.
	sleep func(ctx context.Context, d time.Duration) bool
}

// New builds a client for a base URL like "http://127.0.0.1:8080".
func New(baseURL string, opts Options) *Client {
	if opts.HTTPClient == nil {
		opts.HTTPClient = http.DefaultClient
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = time.Millisecond
	}
	c := &Client{base: strings.TrimRight(baseURL, "/"), opts: opts}
	c.sleep = c.timerSleep
	return c
}

// Run executes one request and returns its timing result.
func (c *Client) Run(ctx context.Context, req wire.RunRequest) (*wire.RunResponse, error) {
	var out wire.RunResponse
	if err := c.postRetry(ctx, "/v1/run", c.tenanted(req), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// tenanted applies the client-level default tenant to a request that
// does not name its own.
func (c *Client) tenanted(req wire.RunRequest) wire.RunRequest {
	if req.Tenant == "" {
		req.Tenant = c.opts.Tenant
	}
	return req
}

// RunBatch executes a request burst via the batch endpoint. The batch
// call itself is retried on overload (the whole burst was rejected);
// per-item failures inside an accepted batch are reported in the
// results, not retried.
func (c *Client) RunBatch(ctx context.Context, reqs []wire.RunRequest) (*wire.BatchResponse, error) {
	tenanted := make([]wire.RunRequest, len(reqs))
	for i, r := range reqs {
		tenanted[i] = c.tenanted(r)
	}
	var out wire.BatchResponse
	err := c.postRetry(ctx, "/v1/batch", wire.BatchRequest{Requests: tenanted}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Err converts a batch item into an error (nil for successful items),
// using the same mapping as top-level failures.
func Err(res wire.BatchResult) error {
	if res.Error == nil {
		return nil
	}
	return &Error{
		Status:     0, // item errors ride inside a 200 batch
		Code:       res.Error.Code,
		Message:    res.Error.Message,
		RetryAfter: time.Duration(res.Error.RetryAfterMS) * time.Millisecond,
	}
}

// Metrics fetches the service metrics in the stable export schema.
func (c *Client) Metrics(ctx context.Context) (*obs.Export, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/metrics?format=json", nil)
	if err != nil {
		return nil, err
	}
	var out obs.Export
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health fetches the service health.
func (c *Client) Health(ctx context.Context) (*wire.Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return nil, err
	}
	var out wire.Health
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// postRetry issues a POST, retrying overload rejections per Options.
func (c *Client) postRetry(ctx context.Context, path string, body, out any) error {
	err := c.post(ctx, path, body, out)
	for attempt := 1; err != nil && attempt <= c.opts.MaxRetries; attempt++ {
		if !errors.Is(err, ErrOverloaded) || ctx.Err() != nil {
			break
		}
		if !c.sleep(ctx, c.backoff(attempt)) {
			break
		}
		err = c.post(ctx, path, body, out)
	}
	return err
}

// backoff computes attempt n's delay: exponential from RetryBase,
// capped at 100ms, with deterministic jitter in [delay/2, delay] drawn
// from the Mix64 stream — bit-compatible with Pool.backoff, so a
// client-side retry schedule replays exactly under a fixed seed.
func (c *Client) backoff(attempt int) time.Duration {
	const maxDelay = 100 * time.Millisecond
	d := c.opts.RetryBase
	for i := 1; i < attempt && d < maxDelay; i++ {
		d *= 2
	}
	if d > maxDelay {
		d = maxDelay
	}
	frac := float64(fault.Mix64(uint64(c.opts.RetrySeed), c.retrySeq.Add(1))>>11) / float64(1<<53)
	return d/2 + time.Duration(frac*float64(d/2))
}

func (c *Client) timerSleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// post issues one POST and decodes the response or error envelope.
func (c *Client) post(ctx context.Context, path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

// do executes a prepared request. Non-2xx responses decode the error
// envelope into a typed *Error.
func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeError turns a non-2xx response into a typed error, surviving
// non-JSON bodies (a proxy's 502 page) with CodeInternal.
func decodeError(resp *http.Response) error {
	cerr := &Error{Status: resp.StatusCode, Code: wire.CodeInternal}
	var envelope struct {
		Error *wire.Error `json:"error"`
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err := json.Unmarshal(raw, &envelope); err == nil && envelope.Error != nil {
		cerr.Code = envelope.Error.Code
		cerr.Message = envelope.Error.Message
		cerr.RetryAfter = time.Duration(envelope.Error.RetryAfterMS) * time.Millisecond
	} else {
		cerr.Message = strings.TrimSpace(string(raw))
	}
	return cerr
}

// Package client is the Go SDK for the mitigation service's HTTP API.
// It speaks the versioned wire schema (internal/transport/wire), maps
// wire errors back onto typed sentinels that mirror the server-side
// taxonomy (ErrOverloaded, ErrBudgetExceeded, ...), and transparently
// retries overload rejections with the same deterministic
// exponential-backoff-with-jitter scheme the pool itself uses, so a
// retrying client is exactly as reproducible as a retrying pool.
//
// The hot paths (Run, RunBatch, Stream) encode and decode through a
// pluggable wire.Codec — the zero-allocation fastjson codec by default,
// encoding/json via wire.Std on request — and read every response body
// to EOF into a pooled buffer before closing it, so connections always
// return to the keep-alive pool.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/transport/wire"
	"repro/internal/transport/wire/fastjson"
)

// Typed sentinels mirroring the service's error taxonomy. Wire errors
// unwrap to these, so callers use errors.Is exactly as they would
// against the in-process server package.
var (
	// ErrOverloaded: the service shed the request (mirrors
	// server.ErrOverloaded). Retried automatically when MaxRetries > 0.
	ErrOverloaded = errors.New("client: service overloaded")
	// ErrShuttingDown: the service is draining (mirrors
	// server.ErrPoolClosed). Never self-retried: a draining service
	// will not come back on this endpoint.
	ErrShuttingDown = errors.New("client: service shutting down")
	// ErrBudgetExceeded: the run exhausted the server-side step or
	// cycle budget (mirrors server.ErrBudgetExceeded).
	ErrBudgetExceeded = errors.New("client: execution budget exceeded")
	// ErrLeakageBudget: the tenant's cumulative leakage bound reached
	// the server's budget (mirrors session.ErrBudgetExceeded). Never
	// self-retried — the account only resets when the session expires,
	// so honor Error.RetryAfter instead of hammering the endpoint.
	ErrLeakageBudget = errors.New("client: tenant leakage budget exceeded")
	// ErrInvalidRequest: the service rejected the request as malformed
	// (bad JSON, unknown input name, wrong schema version).
	ErrInvalidRequest = errors.New("client: invalid request")
)

// Error is a failure reported by the service: the wire error plus its
// HTTP status. It unwraps to the matching sentinel above.
type Error struct {
	// Status is the HTTP status the service answered with.
	Status int
	// Code and Message are the wire error fields.
	Code    string
	Message string
	// RetryAfter is the service-advertised backoff, when given.
	RetryAfter time.Duration
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("client: %s (%s, HTTP %d)", e.Message, e.Code, e.Status)
}

// Unwrap maps the stable wire code onto the package sentinels.
func (e *Error) Unwrap() error {
	switch e.Code {
	case wire.CodeOverloaded:
		return ErrOverloaded
	case wire.CodeShuttingDown:
		return ErrShuttingDown
	case wire.CodeBudgetExceeded:
		return ErrBudgetExceeded
	case wire.CodeLeakageBudget:
		return ErrLeakageBudget
	case wire.CodeInvalidRequest, wire.CodeUnknownInput:
		return ErrInvalidRequest
	case wire.CodeDeadlineExceeded:
		return context.DeadlineExceeded
	case wire.CodeCanceled:
		return context.Canceled
	default:
		return nil
	}
}

// Options configure a Client.
type Options struct {
	// HTTPClient issues the requests. When nil, the client builds its
	// own from http.DefaultTransport with the idle connection pool sized
	// to Concurrency, so a fan-out workload reuses keep-alive
	// connections instead of redialing. Deadlines come from the per-call
	// context, not from here.
	HTTPClient *http.Client
	// Concurrency is the expected number of in-flight requests; it
	// sizes MaxIdleConnsPerHost on the default transport (ignored when
	// HTTPClient is set). Default 16.
	Concurrency int
	// Codec encodes requests and decodes responses on the hot paths.
	// Default is the zero-allocation fastjson codec; set wire.Std{} for
	// the encoding/json fallback.
	Codec wire.Codec
	// MaxRetries, when positive, transparently re-issues a request
	// rejected with ErrOverloaded up to this many extra attempts, with
	// exponential backoff and deterministic jitter between attempts —
	// the same scheme as server.PoolOptions.MaxRetries.
	MaxRetries int
	// RetryBase is the first backoff delay; it doubles each attempt
	// (capped at 100ms) with jitter in [delay/2, delay]. Default 1ms.
	RetryBase time.Duration
	// RetrySeed seeds the deterministic jitter sequence.
	RetrySeed int64
	// Tenant, when set, is the session every request runs under unless
	// the request names its own tenant: Run, RunBatch, and Stream.Send
	// fill RunRequest.Tenant with it when the field is empty. Sessions
	// are a schema-v2 feature; leave empty for anonymous (v1-style)
	// calls.
	Tenant string
	// CoalesceWindow, when positive, micro-batches Run calls: a Run
	// opens (or joins) a linger window of this duration, and every Run
	// that arrives before it closes ships as one /v1/batch POST. Callers
	// still see per-call responses and errors. Trades up to one window
	// of latency for an N-fold cut in HTTP round trips under concurrent
	// load.
	CoalesceWindow time.Duration
	// CoalesceMax bounds a coalesced batch; a full window flushes
	// immediately. Default 64.
	CoalesceMax int
}

// Client talks to one mitigation service endpoint. Safe for concurrent
// use.
type Client struct {
	base  string
	opts  Options
	codec wire.Codec
	co    *coalescer
	// retrySeq numbers backoff sleeps so jitter is a deterministic
	// function of (RetrySeed, sequence number), as in the pool.
	retrySeq atomic.Uint64
	// sleep parks between retry attempts; swapped out by tests to
	// observe the deterministic delay sequence without waiting it out.
	sleep func(ctx context.Context, d time.Duration) bool
}

// New builds a client for a base URL like "http://127.0.0.1:8080".
func New(baseURL string, opts Options) *Client {
	if opts.Concurrency <= 0 {
		opts.Concurrency = 16
	}
	if opts.HTTPClient == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = opts.Concurrency
		if tr.MaxIdleConns < opts.Concurrency {
			tr.MaxIdleConns = opts.Concurrency
		}
		opts.HTTPClient = &http.Client{Transport: tr}
	}
	if opts.Codec == nil {
		opts.Codec = fastjson.Codec{}
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = time.Millisecond
	}
	if opts.CoalesceMax <= 0 {
		opts.CoalesceMax = 64
	}
	c := &Client{base: strings.TrimRight(baseURL, "/"), opts: opts, codec: opts.Codec}
	c.sleep = c.timerSleep
	if opts.CoalesceWindow > 0 {
		c.co = newCoalescer(c)
	}
	return c
}

// Run executes one request and returns its timing result. With
// CoalesceWindow set, concurrent Runs are transparently merged into
// batch calls.
func (c *Client) Run(ctx context.Context, req wire.RunRequest) (*wire.RunResponse, error) {
	req = c.tenanted(req)
	if c.co != nil {
		return c.co.run(ctx, req)
	}
	return c.postRun(ctx, req)
}

// postRun issues a single /v1/run call, bypassing the coalescer.
func (c *Client) postRun(ctx context.Context, req wire.RunRequest) (*wire.RunResponse, error) {
	var out wire.RunResponse
	err := c.postRetry(ctx, "/v1/run",
		func(dst []byte) ([]byte, error) { return c.codec.AppendRunRequest(dst, &req) },
		func(data []byte) error {
			out = wire.RunResponse{}
			return c.codec.DecodeRunResponse(data, &out, false)
		})
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// tenanted applies the client-level default tenant to a request that
// does not name its own.
func (c *Client) tenanted(req wire.RunRequest) wire.RunRequest {
	if req.Tenant == "" {
		req.Tenant = c.opts.Tenant
	}
	return req
}

// RunBatch executes a request burst via the batch endpoint. The batch
// call itself is retried on overload (the whole burst was rejected);
// per-item failures inside an accepted batch are reported in the
// results, not retried.
func (c *Client) RunBatch(ctx context.Context, reqs []wire.RunRequest) (*wire.BatchResponse, error) {
	tenanted := make([]wire.RunRequest, len(reqs))
	for i, r := range reqs {
		tenanted[i] = c.tenanted(r)
	}
	breq := wire.BatchRequest{Requests: tenanted}
	var out wire.BatchResponse
	err := c.postRetry(ctx, "/v1/batch",
		func(dst []byte) ([]byte, error) { return c.codec.AppendBatchRequest(dst, &breq) },
		func(data []byte) error {
			out = wire.BatchResponse{}
			return c.codec.DecodeBatchResponse(data, &out, false)
		})
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Err converts a batch item into an error (nil for successful items),
// using the same mapping as top-level failures.
func Err(res wire.BatchResult) error {
	if res.Error == nil {
		return nil
	}
	return &Error{
		Status:     0, // item errors ride inside a 200 batch
		Code:       res.Error.Code,
		Message:    res.Error.Message,
		RetryAfter: time.Duration(res.Error.RetryAfterMS) * time.Millisecond,
	}
}

// Metrics fetches the service metrics in the stable export schema.
func (c *Client) Metrics(ctx context.Context) (*obs.Export, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/metrics?format=json", nil)
	if err != nil {
		return nil, err
	}
	var out obs.Export
	if err := c.do(req, func(data []byte) error { return json.Unmarshal(data, &out) }); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health fetches the service health.
func (c *Client) Health(ctx context.Context) (*wire.Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return nil, err
	}
	var out wire.Health
	if err := c.do(req, func(data []byte) error { return json.Unmarshal(data, &out) }); err != nil {
		return nil, err
	}
	return &out, nil
}

// postRetry issues a POST, retrying overload rejections per Options.
// The decode callback must reset its destination: it can run once per
// attempt.
func (c *Client) postRetry(ctx context.Context, path string, encode func([]byte) ([]byte, error), decode func([]byte) error) error {
	err := c.post(ctx, path, encode, decode)
	for attempt := 1; err != nil && attempt <= c.opts.MaxRetries; attempt++ {
		if !errors.Is(err, ErrOverloaded) || ctx.Err() != nil {
			break
		}
		if !c.sleep(ctx, c.backoff(attempt)) {
			break
		}
		err = c.post(ctx, path, encode, decode)
	}
	return err
}

// backoff computes attempt n's delay: exponential from RetryBase,
// capped at 100ms, with deterministic jitter in [delay/2, delay] drawn
// from the Mix64 stream — bit-compatible with Pool.backoff, so a
// client-side retry schedule replays exactly under a fixed seed.
func (c *Client) backoff(attempt int) time.Duration {
	const maxDelay = 100 * time.Millisecond
	d := c.opts.RetryBase
	for i := 1; i < attempt && d < maxDelay; i++ {
		d *= 2
	}
	if d > maxDelay {
		d = maxDelay
	}
	frac := float64(fault.Mix64(uint64(c.opts.RetrySeed), c.retrySeq.Add(1))>>11) / float64(1<<53)
	return d/2 + time.Duration(frac*float64(d/2))
}

func (c *Client) timerSleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// post issues one POST, encoding the body into a pooled buffer and
// decoding the response or error envelope.
func (c *Client) post(ctx context.Context, path string, encode func([]byte) ([]byte, error), decode func([]byte) error) error {
	bp := getBuf()
	defer putBuf(bp)
	b, err := encode((*bp)[:0])
	*bp = b[:0]
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, decode)
}

// do executes a prepared request. The response body is always read to
// EOF into a pooled buffer and closed — on success, failure, and decode
// error alike — so the underlying connection re-enters the keep-alive
// pool instead of being torn down. Non-2xx responses decode the error
// envelope into a typed *Error.
func (c *Client) do(req *http.Request, decode func([]byte) error) error {
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	bp := getBuf()
	defer putBuf(bp)
	b, rerr := readBody(resp.Body, (*bp)[:0])
	*bp = b[:0]
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		// A malformed error body (a proxy's 502 page) still surfaces as
		// a typed error; a body read error is secondary to the status.
		return c.decodeError(resp.StatusCode, b)
	}
	if rerr != nil {
		return rerr
	}
	return decode(b)
}

// maxErrorBody bounds how much of a failure response is retained for
// the error message.
const maxErrorBody = 1 << 20

// readBody reads r to EOF into buf, growing it as needed.
func readBody(r io.Reader, buf []byte) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// decodeError turns a non-2xx response body into a typed error,
// surviving non-JSON bodies with CodeInternal.
func (c *Client) decodeError(status int, body []byte) error {
	cerr := &Error{Status: status, Code: wire.CodeInternal}
	if len(body) > maxErrorBody {
		body = body[:maxErrorBody]
	}
	var werr wire.Error
	if err := c.codec.DecodeErrorEnvelope(body, &werr, false); err == nil && werr.Code != "" {
		cerr.Code = werr.Code
		cerr.Message = werr.Message
		cerr.RetryAfter = time.Duration(werr.RetryAfterMS) * time.Millisecond
	} else {
		cerr.Message = strings.TrimSpace(string(body))
	}
	return cerr
}

package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/server"
	"repro/internal/session"
	"repro/internal/transport"
	"repro/internal/transport/wire"
	"repro/internal/types"
)

// taxonomySrc is the same secret-dependent workload the transport
// tests serve: a mitigated sleep on the secret, then a public reply.
const taxonomySrc = `
var h : H;
var reply : L;
mitigate (1, H) [L,L] {
    sleep(h % 64) [H,H];
}
reply := 1;
`

// liveService stands up a real pool + transport handler + HTTP server
// (no stubs — every status code below is produced by the actual
// service path) and counts requests so tests can assert retry counts.
func liveService(t *testing.T, popts server.PoolOptions, hopts transport.Options) (*transport.Handler, string, *atomic.Int64) {
	t.Helper()
	p, err := parser.Parse(taxonomySrc)
	if err != nil {
		t.Fatal(err)
	}
	r, err := types.Check(p, lattice.TwoPoint())
	if err != nil {
		t.Fatal(err)
	}
	if popts.Env == nil {
		popts.Env = hw.NewPartitioned(r.Lat, hw.Table1Config())
	}
	if popts.Workers == 0 {
		popts.Workers = 1
	}
	pool, err := server.NewPool(p, r, popts)
	if err != nil {
		t.Fatal(err)
	}
	hopts.Pool = pool
	hopts.Prog = p
	h, err := transport.New(hopts)
	if err != nil {
		t.Fatal(err)
	}
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		ts.Close()
		pool.Close()
	})
	return h, ts.URL, &hits
}

// TestTaxonomyAgainstLiveService walks the full error taxonomy against
// a real service — each arm provokes the genuine server-side failure
// and asserts the sentinel, the HTTP status, and the wire code all
// line up. This is the end-to-end contract the fakeService unit tests
// above cannot give.
func TestTaxonomyAgainstLiveService(t *testing.T) {
	ctx := context.Background()

	t.Run("400 unknown_input", func(t *testing.T) {
		_, url, _ := liveService(t, server.PoolOptions{}, transport.Options{})
		c := New(url, Options{})
		_, err := c.Run(ctx, wire.RunRequest{Inputs: map[string]int64{"nope": 1}})
		assertTaxonomy(t, err, ErrInvalidRequest, http.StatusBadRequest, wire.CodeUnknownInput)
	})

	t.Run("422 budget_exceeded", func(t *testing.T) {
		_, url, _ := liveService(t, server.PoolOptions{
			Options: server.Options{Limits: exec.Limits{MaxSteps: 2}},
		}, transport.Options{})
		c := New(url, Options{})
		_, err := c.Run(ctx, wire.RunRequest{Inputs: map[string]int64{"h": 63}})
		assertTaxonomy(t, err, ErrBudgetExceeded, http.StatusUnprocessableEntity, wire.CodeBudgetExceeded)
	})

	t.Run("429 leakage_budget_exceeded", func(t *testing.T) {
		mgr, err := session.NewManager(session.Options{
			Lat:        lattice.TwoPoint(),
			BudgetBits: 10,
			TTL:        time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, url, hits := liveService(t, server.PoolOptions{}, transport.Options{Sessions: mgr})
		// MaxRetries set high on purpose: a 429 must NOT be retried —
		// the tenant's account only resets when the session expires.
		c := New(url, Options{Tenant: "bob", MaxRetries: 5})
		c.sleep = func(context.Context, time.Duration) bool { return true }

		var denied error
		for i := 0; i < 50 && denied == nil; i++ {
			resp, err := c.Run(ctx, wire.RunRequest{Inputs: map[string]int64{"h": 63}})
			if err != nil {
				denied = err
				break
			}
			// Options.Tenant must ride on every request.
			if resp.Tenant != "bob" || resp.Epoch != i+1 {
				t.Fatalf("run %d: session fields = %q/%d", i+1, resp.Tenant, resp.Epoch)
			}
		}
		if denied == nil {
			t.Fatal("a 10-bit budget must eventually deny")
		}
		assertTaxonomy(t, denied, ErrLeakageBudget, http.StatusTooManyRequests, wire.CodeLeakageBudget)
		var cerr *Error
		errors.As(denied, &cerr)
		if cerr.RetryAfter != time.Minute {
			t.Errorf("RetryAfter = %v, want the session TTL (1m)", cerr.RetryAfter)
		}

		// Exactly one HTTP request per Run call: the denial was not
		// silently retried despite MaxRetries.
		before := hits.Load()
		if _, err := c.Run(ctx, wire.RunRequest{Inputs: map[string]int64{"h": 1}}); !errors.Is(err, ErrLeakageBudget) {
			t.Fatalf("still-denied tenant: err = %v", err)
		}
		if got := hits.Load() - before; got != 1 {
			t.Errorf("429 was retried: %d requests for one call", got)
		}

		// A per-request tenant overrides the client default and is
		// admitted on its own fresh account.
		resp, err := c.Run(ctx, wire.RunRequest{Tenant: "alice", Inputs: map[string]int64{"h": 1}})
		if err != nil {
			t.Fatalf("override tenant: %v", err)
		}
		if resp.Tenant != "alice" || resp.Epoch != 1 {
			t.Errorf("override tenant session = %q/%d", resp.Tenant, resp.Epoch)
		}
	})

	t.Run("503 overloaded", func(t *testing.T) {
		_, url, hits := liveService(t, server.PoolOptions{
			ShedOnSaturation: true,
			Options: server.Options{
				Injector: fault.New(1, fault.Plan{fault.QueueSaturation: {Rate: 1}}),
			},
		}, transport.Options{RetryAfter: time.Second})
		c := New(url, Options{MaxRetries: 2, RetrySeed: 7})
		c.sleep = func(context.Context, time.Duration) bool { return true }
		_, err := c.Run(ctx, wire.RunRequest{Inputs: map[string]int64{"h": 1}})
		assertTaxonomy(t, err, ErrOverloaded, http.StatusServiceUnavailable, wire.CodeOverloaded)
		// Overload IS retried: 1 initial + 2 retries.
		if got := hits.Load(); got != 3 {
			t.Errorf("attempts = %d, want 3", got)
		}
	})

	t.Run("503 shutting_down", func(t *testing.T) {
		h, url, _ := liveService(t, server.PoolOptions{}, transport.Options{})
		if err := h.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		c := New(url, Options{MaxRetries: 3, RetrySeed: 7})
		c.sleep = func(context.Context, time.Duration) bool { return true }
		_, err := c.Run(ctx, wire.RunRequest{Inputs: map[string]int64{"h": 1}})
		assertTaxonomy(t, err, ErrShuttingDown, http.StatusServiceUnavailable, wire.CodeShuttingDown)
	})
}

// assertTaxonomy checks the three faces of one failure: the errors.Is
// sentinel, the HTTP status, and the stable wire code.
func assertTaxonomy(t *testing.T, err, sentinel error, status int, code string) {
	t.Helper()
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want errors.Is(%v)", err, sentinel)
	}
	var cerr *Error
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v, want *client.Error", err)
	}
	if cerr.Status != status {
		t.Errorf("status = %d, want %d", cerr.Status, status)
	}
	if cerr.Code != code {
		t.Errorf("code = %q, want %q", cerr.Code, code)
	}
}

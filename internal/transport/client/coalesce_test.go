package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport/wire"
)

// batchEchoService answers /v1/batch by echoing each request's h input
// as the response Time, counting batch calls and their sizes.
func batchEchoService(t *testing.T) (*httptest.Server, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var calls, items atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/batch" {
			t.Errorf("unexpected path %s (coalesced Runs must use the batch endpoint)", r.URL.Path)
			http.NotFound(w, r)
			return
		}
		var breq wire.BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&breq); err != nil {
			t.Errorf("bad batch body: %v", err)
		}
		calls.Add(1)
		items.Add(int64(len(breq.Requests)))
		out := wire.BatchResponse{SchemaVersion: wire.SchemaVersion}
		for _, req := range breq.Requests {
			h := req.Inputs["h"]
			if h == 666 {
				out.Results = append(out.Results, wire.BatchResult{
					Error: &wire.Error{Code: wire.CodeBudgetExceeded, Message: "item failed"},
				})
				continue
			}
			out.Results = append(out.Results, wire.BatchResult{
				Response: &wire.RunResponse{SchemaVersion: wire.SchemaVersion, Time: uint64(h)},
			})
		}
		json.NewEncoder(w).Encode(out)
	}))
	t.Cleanup(ts.Close)
	return ts, &calls, &items
}

// TestCoalesceMergesConcurrentRuns: N concurrent Runs inside one
// linger window become one batch POST, and every caller gets its own
// item's result back.
func TestCoalesceMergesConcurrentRuns(t *testing.T) {
	ts, calls, items := batchEchoService(t)
	c := New(ts.URL, Options{CoalesceWindow: 50 * time.Millisecond})

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	times := make([]uint64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.Run(context.Background(), wire.RunRequest{Inputs: map[string]int64{"h": int64(i + 1)}})
			errs[i] = err
			if resp != nil {
				times[i] = resp.Time
			}
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if times[i] != uint64(i+1) {
			t.Errorf("run %d got Time %d, want %d (cross-caller result mixup)", i, times[i], i+1)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("batch calls = %d, want 1 (coalescing must merge the burst)", got)
	}
	if got := items.Load(); got != n {
		t.Errorf("batched items = %d, want %d", got, n)
	}
}

// TestCoalesceFullBatchFlushesEarly: reaching CoalesceMax ships the
// batch without waiting out the window.
func TestCoalesceFullBatchFlushesEarly(t *testing.T) {
	ts, calls, _ := batchEchoService(t)
	c := New(ts.URL, Options{CoalesceWindow: time.Hour, CoalesceMax: 4})

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Run(context.Background(), wire.RunRequest{Inputs: map[string]int64{"h": int64(i)}}); err != nil {
				t.Errorf("run %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("full batch took %v; must flush at CoalesceMax, not at the window", elapsed)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("batch calls = %d, want 1", got)
	}
}

// TestCoalescePerItemErrors: one item's failure maps back to its own
// caller as a typed error; the others succeed.
func TestCoalescePerItemErrors(t *testing.T) {
	ts, _, _ := batchEchoService(t)
	c := New(ts.URL, Options{CoalesceWindow: time.Hour, CoalesceMax: 2})

	var wg sync.WaitGroup
	var okErr, failErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, okErr = c.Run(context.Background(), wire.RunRequest{Inputs: map[string]int64{"h": 1}})
	}()
	go func() {
		defer wg.Done()
		_, failErr = c.Run(context.Background(), wire.RunRequest{Inputs: map[string]int64{"h": 666}})
	}()
	wg.Wait()

	if okErr != nil {
		t.Errorf("healthy item failed: %v", okErr)
	}
	if !errors.Is(failErr, ErrBudgetExceeded) {
		t.Errorf("failing item error = %v, want ErrBudgetExceeded", failErr)
	}
}

// TestCoalesceAppliesDefaultTenant: the client-level tenant reaches
// coalesced requests exactly as it does direct ones.
func TestCoalesceAppliesDefaultTenant(t *testing.T) {
	got := make(chan string, 1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var breq wire.BatchRequest
		json.NewDecoder(r.Body).Decode(&breq)
		got <- breq.Requests[0].Tenant
		json.NewEncoder(w).Encode(wire.BatchResponse{
			SchemaVersion: wire.SchemaVersion,
			Results:       []wire.BatchResult{{Response: &wire.RunResponse{}}},
		})
	}))
	defer ts.Close()

	c := New(ts.URL, Options{CoalesceWindow: time.Millisecond, Tenant: "alice"})
	if _, err := c.Run(context.Background(), wire.RunRequest{Inputs: map[string]int64{"h": 1}}); err != nil {
		t.Fatal(err)
	}
	if tenant := <-got; tenant != "alice" {
		t.Errorf("coalesced tenant = %q, want alice", tenant)
	}
}

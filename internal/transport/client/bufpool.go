package client

import "sync"

// Pooled encode/read buffers, mirroring the server-side discipline:
// request bodies are encoded into and response bodies read out of
// these, so steady-state calls allocate no per-request buffers. A
// buffer is returned only after its bytes are done with — the request
// has been sent, or the decode destination has copied what it keeps.

// maxPooledBuf bounds what a put returns to the pool, so one oversized
// response does not pin its buffer forever.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

package transport

// BenchmarkTransport is the wire fast-path record: the mitigated
// echo workload through the HTTP service over loopback, measured as
// submit-path req/s for every combination of codec (stdlib
// encoding/json vs the pooled fastjson codec) and submission mode
// (per-request /v1/run, 64-item /v1/batch, pipelined /v1/stream).
// `make bench-transport` captures it (with -benchmem, so the
// zero-allocation property of the fast path is on record) into
// BENCH_transport.json, where benchjson derives the fast-vs-std
// speedup per mode and the headline fastpath-vs-baseline ratio
// (stream/fast over run/std — the ≥3× acceptance line).
//
// The run mode fans requests across GOMAXPROCS client goroutines; the
// stream mode pipelines everything down one connection, which is the
// point of the streaming endpoint: one connection keeps every shard
// busy with no per-request HTTP round trip.

import (
	"context"
	"fmt"
	"io"
	"testing"

	"repro/internal/server"
	"repro/internal/transport/client"
	"repro/internal/transport/wire"
	"repro/internal/transport/wire/fastjson"
)

func BenchmarkTransport(b *testing.B) {
	const nreq = 64
	reqs := make([]wire.RunRequest, nreq)
	for i := range reqs {
		reqs[i] = wire.RunRequest{Inputs: map[string]int64{"h": int64(i % 64)}}
	}
	ctx := context.Background()

	codecs := []struct {
		name  string
		codec wire.Codec
	}{
		{"std", wire.Std{}},
		{"fast", fastjson.Codec{}},
	}
	for _, cd := range codecs {
		// One service per codec: the handler and the client speak the
		// same codec on both sides of the wire.
		_, ts := newService(b, server.PoolOptions{Workers: 4, QueueDepth: nreq}, Options{Codec: cd.codec})
		c := client.New(ts.URL, client.Options{Codec: cd.codec, Concurrency: 16})

		b.Run(fmt.Sprintf("mode=run/codec=%s", cd.name), func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := c.Run(ctx, reqs[i%nreq]); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})

		b.Run(fmt.Sprintf("mode=batch/codec=%s", cd.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				resp, err := c.RunBatch(ctx, reqs)
				if err != nil {
					b.Fatal(err)
				}
				if len(resp.Results) != nreq {
					b.Fatalf("batch returned %d results, want %d", len(resp.Results), nreq)
				}
			}
			b.ReportMetric(float64(b.N)*nreq/b.Elapsed().Seconds(), "req/s")
		})

		b.Run(fmt.Sprintf("mode=stream/codec=%s", cd.name), func(b *testing.B) {
			s, err := c.Stream(ctx)
			if err != nil {
				b.Fatal(err)
			}
			errc := make(chan error, 1)
			go func() {
				for i := 0; i < b.N; i++ {
					if err := s.Send(reqs[i%nreq]); err != nil {
						errc <- err
						return
					}
				}
				errc <- s.CloseSend()
			}()
			got := 0
			for {
				res, err := s.Recv()
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				if res.Error != nil {
					b.Fatalf("stream item failed: %+v", res.Error)
				}
				got++
			}
			if err := <-errc; err != nil {
				b.Fatal(err)
			}
			if got != b.N {
				b.Fatalf("received %d results for %d sends", got, b.N)
			}
			s.Close()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

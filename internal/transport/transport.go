// Package transport is the HTTP/JSON front-end of the mitigation
// service: a versioned wire API (see internal/transport/wire) over a
// sharded server.Pool.
//
//	POST /v1/run      — one request: scalar inputs in, timing result out
//	POST /v1/batch    — a burst, served via the pool's batched path
//	GET  /v1/metrics  — obs.Export as Prometheus text (or JSON)
//	GET  /v1/healthz  — liveness and drain state
//
// The transport owns admission control (queue saturation and drain map
// to 503 + Retry-After, reusing the pool's load-shedding sentinels) and
// graceful shutdown (Shutdown stops admitting, waits for in-flight
// requests, then drains the pool). It converts between wire DTOs and
// internal structs at the boundary; nothing internal leaks into the
// network contract.
package transport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/lang/ast"
	"repro/internal/obs"
	"repro/internal/sem/mem"
	"repro/internal/server"
	"repro/internal/session"
	"repro/internal/transport/wire"
	"repro/internal/transport/wire/fastjson"
)

// TenantHeader is the header fallback for naming a tenant when the
// client cannot set the body's tenant field (e.g. plain curl against
// /v1/run with a canned body). The body field wins when both are set.
const TenantHeader = "X-Timing-Tenant"

// statusClientClosedRequest is the de-facto status for "client went
// away" (nginx's 499): the run was canceled by the caller, not failed
// by the service.
const statusClientClosedRequest = 499

// DefaultMaxBatch is the batch-size bound when Options.MaxBatch is 0.
// A batch is held in memory whole (decoded, validated, results
// buffered), so an unbounded batch is an amplification lever: one
// request body that pins a worker pool for minutes.
const DefaultMaxBatch = 1024

// Options configure a Handler.
type Options struct {
	// Pool serves the requests; required. The handler takes ownership
	// at Shutdown (which closes it).
	Pool *server.Pool
	// Prog is the served program; required. Input names are validated
	// against its declarations before a request is admitted, because
	// memory writes trap on undeclared names.
	Prog *ast.Program
	// MaxInFlight bounds concurrently admitted HTTP requests; beyond it
	// the transport sheds with 503 before touching the pool. 0 means no
	// transport-level bound (the pool's queue backpressure still
	// applies).
	MaxInFlight int
	// RetryAfter is the delay advertised on 503 responses (Retry-After
	// header and retry_after_ms body field). Default 1s.
	RetryAfter time.Duration
	// MaxBatch bounds the number of requests in one /v1/batch body;
	// oversized batches are rejected whole with 400 invalid_request
	// before any item runs. 0 takes DefaultMaxBatch; negative disables
	// the bound.
	MaxBatch int
	// Sessions, when non-nil, enables per-tenant mitigation sessions:
	// requests naming a tenant (body field or X-Timing-Tenant header)
	// run against that tenant's persistent mitigation state and leakage
	// account, and are denied with 429 leakage_budget_exceeded once the
	// account reaches the manager's budget. Nil ignores tenant names —
	// every request is anonymous, the schema-v1 behavior.
	Sessions *session.Manager
	// Codec encodes and decodes the wire messages. Nil takes the fast
	// hand-rolled codec (fastjson); `timingc serve -codec std` installs
	// wire.Std, the encoding/json fallback the fast path is proven
	// byte-identical to.
	Codec wire.Codec
	// StreamWindow bounds how many anonymous /v1/stream items may be in
	// flight in the pool per connection before the decode loop blocks on
	// the oldest result. 0 takes DefaultStreamWindow.
	StreamWindow int
}

// DefaultStreamWindow is the per-stream pipelining depth when
// Options.StreamWindow is 0 — deep enough to keep every shard busy,
// shallow enough that one stream cannot queue unbounded work.
const DefaultStreamWindow = 256

// Handler is the HTTP front-end. Create with New; it implements
// http.Handler and is safe for concurrent use.
type Handler struct {
	opts Options
	mux  *http.ServeMux
	// names is a template memory over the served program, used only for
	// declaration lookups (never written).
	names *mem.Memory
	// codec is the resolved wire codec (Options.Codec or the fast
	// default); metrics the pool's accumulator, for the transport-level
	// byte and stream counters.
	codec   wire.Codec
	metrics *obs.Metrics

	mu       sync.Mutex
	inFlight int
	draining bool
	idle     chan struct{} // closed when draining and inFlight hits 0
}

// New builds the handler.
func New(opts Options) (*Handler, error) {
	if opts.Pool == nil {
		return nil, errors.New("transport: Options.Pool is required")
	}
	if opts.Prog == nil {
		return nil, errors.New("transport: Options.Prog is required")
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	if opts.Codec == nil {
		opts.Codec = fastjson.Codec{}
	}
	if opts.StreamWindow <= 0 {
		opts.StreamWindow = DefaultStreamWindow
	}
	h := &Handler{
		opts:    opts,
		names:   mem.New(opts.Prog),
		codec:   opts.Codec,
		metrics: opts.Pool.Metrics(),
	}
	h.mux = http.NewServeMux()
	h.mux.HandleFunc("POST /v1/run", h.handleRun)
	h.mux.HandleFunc("POST /v1/batch", h.handleBatch)
	h.mux.HandleFunc("POST /v1/stream", h.handleStream)
	h.mux.HandleFunc("GET /v1/metrics", h.handleMetrics)
	h.mux.HandleFunc("GET /v1/healthz", h.handleHealthz)
	return h, nil
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// Mux exposes the underlying mux so callers can mount additional
// routes (the CLI mounts pprof) on the same listener.
func (h *Handler) Mux() *http.ServeMux { return h.mux }

// begin admits one request, or reports why not. The error, when
// non-nil, is already wire-shaped.
func (h *Handler) begin() *wire.Error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.draining {
		return &wire.Error{
			Code:         wire.CodeShuttingDown,
			Message:      "service is draining",
			RetryAfterMS: h.opts.RetryAfter.Milliseconds(),
		}
	}
	if h.opts.MaxInFlight > 0 && h.inFlight >= h.opts.MaxInFlight {
		return &wire.Error{
			Code:         wire.CodeOverloaded,
			Message:      "too many in-flight requests",
			RetryAfterMS: h.opts.RetryAfter.Milliseconds(),
		}
	}
	h.inFlight++
	return nil
}

// end releases an admission; the last in-flight request out signals a
// waiting Shutdown.
func (h *Handler) end() {
	h.mu.Lock()
	h.inFlight--
	if h.draining && h.inFlight == 0 && h.idle != nil {
		close(h.idle)
		h.idle = nil
	}
	h.mu.Unlock()
}

// Shutdown drains gracefully: new work is refused with 503
// shutting_down, in-flight requests run to completion, then the pool is
// closed. Returns ctx.Err() if the context expires first (the pool is
// then still closed, aborting whatever remained). Safe to call more
// than once.
func (h *Handler) Shutdown(ctx context.Context) error {
	h.mu.Lock()
	if !h.draining {
		h.draining = true
		if h.inFlight > 0 {
			h.idle = make(chan struct{})
		}
	}
	idle := h.idle
	h.mu.Unlock()

	var err error
	if idle != nil {
		select {
		case <-idle:
		case <-ctx.Done():
			err = ctx.Err()
		}
	}
	h.opts.Pool.Close()
	return err
}

// Draining reports whether Shutdown has begun.
func (h *Handler) Draining() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.draining
}

// ---------------------------------------------------------------------------
// Endpoints

func (h *Handler) handleRun(w http.ResponseWriter, r *http.Request) {
	if werr := h.begin(); werr != nil {
		h.writeError(w, werr)
		return
	}
	defer h.end()

	body, werr := h.readBody(r)
	if werr != nil {
		h.writeError(w, werr)
		return
	}
	var req wire.RunRequest
	err := h.codec.DecodeRunRequest(*body, &req, true)
	putBuf(body)
	if err != nil {
		h.writeError(w, invalidRequest(err))
		return
	}
	if werr := checkVersion(req.SchemaVersion); werr != nil {
		h.writeError(w, werr)
		return
	}
	sreq, werr := h.toRequest(req)
	if werr != nil {
		h.writeError(w, werr)
		return
	}
	tenant, werr := h.tenantOf(req, r)
	if werr != nil {
		h.writeError(w, werr)
		return
	}
	if tenant == "" {
		resp, err := h.opts.Pool.Handle(r.Context(), sreq)
		if err != nil {
			h.writeError(w, h.toWireError(err))
			return
		}
		out := toRunResponse(resp, req)
		server.ReleaseResponse(resp)
		h.writeRunResponse(w, &out)
		return
	}
	resp, info, werr := h.runSession(r.Context(), tenant, sreq)
	if werr != nil {
		h.writeError(w, werr)
		return
	}
	out := toRunResponse(resp, req)
	out.Tenant = info.Tenant
	out.Epoch = info.Epoch
	out.LeakageBits = info.SpentBits
	server.ReleaseResponse(resp)
	h.writeRunResponse(w, &out)
}

// writeRunResponse encodes a run response through the codec into a
// pooled buffer and writes it with an exact Content-Length.
func (h *Handler) writeRunResponse(w http.ResponseWriter, out *wire.RunResponse) {
	bp := getBuf()
	b, err := h.codec.AppendRunResponse((*bp)[:0], out)
	*bp = b[:0]
	if err != nil {
		putBuf(bp)
		h.writeError(w, &wire.Error{Code: wire.CodeInternal, Message: err.Error()})
		return
	}
	h.writeBody(w, http.StatusOK, b)
	putBuf(bp)
}

// writeBody writes one fully buffered JSON body: exact Content-Length
// (so keep-alive needs no chunking), bytes counted. The buffer is the
// caller's; it is not retained after Write returns.
func (h *Handler) writeBody(w http.ResponseWriter, status int, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(status)
	n, _ := w.Write(b)
	h.metrics.AddBytesOut(n)
}

// tenantOf resolves a request's tenant: the body field, then the
// header fallback. Naming DIFFERENT tenants in body and header is
// rejected — silently picking one would bill probes (and leakage
// budget) to a session the caller may not have meant. Sessions being
// disabled makes every request anonymous regardless.
func (h *Handler) tenantOf(req wire.RunRequest, r *http.Request) (string, *wire.Error) {
	if h.opts.Sessions == nil {
		return "", nil
	}
	hdr := r.Header.Get(TenantHeader)
	if req.Tenant != "" && hdr != "" && req.Tenant != hdr {
		return "", &wire.Error{
			Code: wire.CodeInvalidRequest,
			Message: fmt.Sprintf("tenant mismatch: body names %q but %s header names %q",
				req.Tenant, TenantHeader, hdr),
		}
	}
	if req.Tenant != "" {
		return req.Tenant, nil
	}
	return hdr, nil
}

// maxBatch resolves the configured batch bound (0 disabled).
func (h *Handler) maxBatch() int {
	switch {
	case h.opts.MaxBatch < 0:
		return 0
	case h.opts.MaxBatch == 0:
		return DefaultMaxBatch
	default:
		return h.opts.MaxBatch
	}
}

// runSession serves one request inside a tenant's session: admission
// against the leakage budget, the tenant's own mitigation state
// spliced through the pool, and the account advanced on success only.
func (h *Handler) runSession(ctx context.Context, tenant string, sreq server.Request) (*server.Response, session.Info, *wire.Error) {
	tk, err := h.opts.Sessions.Begin(tenant)
	if err != nil {
		return nil, session.Info{}, h.toWireError(err)
	}
	resp, err := h.opts.Pool.HandleWith(ctx, sreq, tk.Mit())
	if err != nil {
		tk.Abort()
		return nil, session.Info{}, h.toWireError(err)
	}
	info := tk.Commit(resp.Time, len(resp.Mitigations))
	return resp, info, nil
}

func (h *Handler) handleBatch(w http.ResponseWriter, r *http.Request) {
	if werr := h.begin(); werr != nil {
		h.writeError(w, werr)
		return
	}
	defer h.end()

	body, werr := h.readBody(r)
	if werr != nil {
		h.writeError(w, werr)
		return
	}
	var req wire.BatchRequest
	err := h.codec.DecodeBatchRequest(*body, &req, true)
	putBuf(body)
	if err != nil {
		h.writeError(w, invalidRequest(err))
		return
	}
	if werr := checkVersion(req.SchemaVersion); werr != nil {
		h.writeError(w, werr)
		return
	}
	if max := h.maxBatch(); max > 0 && len(req.Requests) > max {
		h.writeError(w, &wire.Error{
			Code:    wire.CodeInvalidRequest,
			Message: fmt.Sprintf("batch has %d requests; this server accepts at most %d", len(req.Requests), max),
		})
		return
	}
	// Validate every item before submitting any: a batch with a typo'd
	// input name or a conflicting tenant fails fast as one invalid
	// request, not as a half-run burst.
	sreqs := make([]server.Request, len(req.Requests))
	tenants := make([]string, len(req.Requests))
	tenanted := false
	for i, item := range req.Requests {
		sreq, werr := h.toRequest(item)
		if werr != nil {
			werr.Message = fmt.Sprintf("request %d: %s", i, werr.Message)
			h.writeError(w, werr)
			return
		}
		sreqs[i] = sreq
		tenant, werr := h.tenantOf(item, r)
		if werr != nil {
			werr.Message = fmt.Sprintf("request %d: %s", i, werr.Message)
			h.writeError(w, werr)
			return
		}
		tenants[i] = tenant
		if tenant != "" {
			tenanted = true
		}
	}
	resultsBuf := getResults(len(sreqs))
	defer putResults(resultsBuf)
	out := wire.BatchResponse{
		SchemaVersion: wire.SchemaVersion,
		Results:       *resultsBuf,
	}
	if tenanted {
		// Session batches run item by item in submission order: each
		// item's admission must see the account its predecessors left
		// (a budget can run out mid-batch), and a tenant's epochs must
		// advance in order. This trades the pool's batched fast path for
		// the session semantics; anonymous batches keep the fast path.
		for i := range sreqs {
			tenant := tenants[i]
			if tenant == "" {
				resp, err := h.opts.Pool.Handle(r.Context(), sreqs[i])
				if err != nil {
					out.Results[i].Error = h.toWireError(err)
					continue
				}
				rr := toRunResponse(resp, req.Requests[i])
				out.Results[i].Response = &rr
				server.ReleaseResponse(resp)
				continue
			}
			resp, info, werr := h.runSession(r.Context(), tenant, sreqs[i])
			if werr != nil {
				out.Results[i].Error = werr
				continue
			}
			rr := toRunResponse(resp, req.Requests[i])
			rr.Tenant = info.Tenant
			rr.Epoch = info.Epoch
			rr.LeakageBits = info.SpentBits
			out.Results[i].Response = &rr
			server.ReleaseResponse(resp)
		}
		h.writeBatchResponse(w, &out)
		return
	}
	resps, errs := h.opts.Pool.HandleAllErrs(r.Context(), sreqs)
	for i := range sreqs {
		if errs[i] != nil {
			out.Results[i].Error = h.toWireError(errs[i])
			continue
		}
		rr := toRunResponse(resps[i], req.Requests[i])
		out.Results[i].Response = &rr
		server.ReleaseResponse(resps[i])
	}
	h.writeBatchResponse(w, &out)
}

// writeBatchResponse encodes a batch response through the codec into a
// pooled buffer. The Results slice itself is pooled by the caller; it
// is released only after the encode has copied everything onto the
// wire.
func (h *Handler) writeBatchResponse(w http.ResponseWriter, out *wire.BatchResponse) {
	bp := getBuf()
	b, err := h.codec.AppendBatchResponse((*bp)[:0], out)
	*bp = b[:0]
	if err != nil {
		putBuf(bp)
		h.writeError(w, &wire.Error{Code: wire.CodeInternal, Message: err.Error()})
		return
	}
	h.writeBody(w, http.StatusOK, b)
	putBuf(bp)
}

func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	export := h.opts.Pool.Snapshot().Export()
	if r.URL.Query().Get("format") == "json" || r.Header.Get("Accept") == "application/json" {
		writeJSON(w, http.StatusOK, export)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	writeProm(w, export)
}

func (h *Handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := wire.StatusOK
	if h.Draining() {
		status = wire.StatusDraining
	}
	writeJSON(w, http.StatusOK, wire.Health{
		SchemaVersion: wire.SchemaVersion,
		Status:        status,
		Engine:        h.opts.Pool.Shard(0).Engine(),
		Workers:       h.opts.Pool.Workers(),
	})
}

// ---------------------------------------------------------------------------
// Conversions

// readBody slurps a request body into a pooled buffer and counts the
// bytes. The caller owns the returned buffer and must putBuf it after
// the decoded request no longer aliases it (wire decoders copy or
// intern everything they keep, so after decode is safe).
func (h *Handler) readBody(r *http.Request) (*[]byte, *wire.Error) {
	bp := getBuf()
	b := *bp
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := r.Body.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			*bp = b[:0]
			putBuf(bp)
			return nil, &wire.Error{Code: wire.CodeInvalidRequest, Message: err.Error()}
		}
	}
	*bp = b
	h.metrics.AddBytesIn(len(b))
	return bp, nil
}

// invalidRequest wraps a decode failure in the stable error shape.
func invalidRequest(err error) *wire.Error {
	return &wire.Error{Code: wire.CodeInvalidRequest, Message: err.Error()}
}

// checkVersion accepts 0 (meaning "current") and every schema from
// MinSchemaVersion through the current one — v2 is additive over v1,
// so a v1 request is served with v1 semantics (no tenant, anonymous).
func checkVersion(v int) *wire.Error {
	if v != 0 && (v < wire.MinSchemaVersion || v > wire.SchemaVersion) {
		return &wire.Error{
			Code: wire.CodeInvalidRequest,
			Message: fmt.Sprintf("unsupported schema_version %d (this server speaks %d through %d)",
				v, wire.MinSchemaVersion, wire.SchemaVersion),
		}
	}
	return nil
}

// toRequest validates a wire request's input names against the served
// program and builds the memory-setup closure. Validation happens here,
// at admission, because mem.Set panics on undeclared names — a malformed
// request must be a 400, not a worker crash.
func (h *Handler) toRequest(req wire.RunRequest) (server.Request, *wire.Error) {
	for name := range req.Inputs {
		if !h.names.HasScalar(name) {
			return nil, &wire.Error{
				Code:    wire.CodeUnknownInput,
				Message: fmt.Sprintf("input %q is not a declared scalar of the served program", name),
			}
		}
	}
	inputs := req.Inputs
	return func(m *mem.Memory) {
		for name, v := range inputs {
			m.Set(name, v)
		}
	}, nil
}

// toRunResponse converts a pool response, including the trace and
// mitigation records only when the request opted in.
func toRunResponse(resp *server.Response, req wire.RunRequest) wire.RunResponse {
	out := wire.RunResponse{
		SchemaVersion:  wire.SchemaVersion,
		Index:          resp.Index,
		Shard:          resp.Shard,
		ShardIndex:     resp.ShardIndex,
		Time:           resp.Time,
		Mispredictions: resp.Mispredictions,
	}
	if req.Trace {
		out.Trace = make([]wire.Event, len(resp.Trace))
		for i, e := range resp.Trace {
			out.Trace[i] = wire.Event{Var: e.Var, Value: e.Value, Time: e.Time}
		}
	}
	if req.Mitigations {
		out.Mitigations = make([]wire.MitRecord, len(resp.Mitigations))
		for i, m := range resp.Mitigations {
			out.Mitigations[i] = wire.MitRecord{
				ID: m.ID, Duration: m.Duration, Elapsed: m.Elapsed,
				Start: m.Start, Mispredicted: m.Mispredicted,
			}
		}
	}
	return out
}

// toWireError maps a pool error onto the stable wire vocabulary. The
// sentinel checks mirror the service's own taxonomy: saturation and
// shutdown are retryable-with-delay, budget exhaustion is the caller's
// program being too big, deadline/cancel are timing outcomes.
func (h *Handler) toWireError(err error) *wire.Error {
	retryMS := h.opts.RetryAfter.Milliseconds()
	var be *session.BudgetError
	switch {
	case errors.As(err, &be):
		return &wire.Error{
			Code:         wire.CodeLeakageBudget,
			Message:      err.Error(),
			RetryAfterMS: be.RetryAfter.Milliseconds(),
		}
	case errors.Is(err, server.ErrOverloaded):
		return &wire.Error{Code: wire.CodeOverloaded, Message: err.Error(), RetryAfterMS: retryMS}
	case errors.Is(err, server.ErrPoolClosed):
		return &wire.Error{Code: wire.CodeShuttingDown, Message: err.Error(), RetryAfterMS: retryMS}
	case errors.Is(err, server.ErrBudgetExceeded):
		return &wire.Error{Code: wire.CodeBudgetExceeded, Message: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		return &wire.Error{Code: wire.CodeDeadlineExceeded, Message: err.Error()}
	case errors.Is(err, context.Canceled):
		return &wire.Error{Code: wire.CodeCanceled, Message: err.Error()}
	default:
		return &wire.Error{Code: wire.CodeInternal, Message: err.Error()}
	}
}

// statusFor maps a wire error code to its HTTP status.
func statusFor(code string) int {
	switch code {
	case wire.CodeInvalidRequest, wire.CodeUnknownInput:
		return http.StatusBadRequest
	case wire.CodeBudgetExceeded:
		return http.StatusUnprocessableEntity
	case wire.CodeLeakageBudget:
		return http.StatusTooManyRequests
	case wire.CodeOverloaded, wire.CodeShuttingDown:
		return http.StatusServiceUnavailable
	case wire.CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	case wire.CodeCanceled:
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// writeError emits a wire error with its HTTP status; 503s and 429s
// carry a Retry-After header so well-behaved clients back off (for a
// budget denial it is the session TTL — when the account resets).
func (h *Handler) writeError(w http.ResponseWriter, werr *wire.Error) {
	status := statusFor(werr.Code)
	if (status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests) && werr.RetryAfterMS > 0 {
		secs := (werr.RetryAfterMS + 999) / 1000 // Retry-After is whole seconds; round up
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	bp := getBuf()
	b, err := h.codec.AppendErrorEnvelope((*bp)[:0], werr)
	*bp = b[:0]
	if err != nil {
		putBuf(bp)
		writeJSON(w, status, struct {
			Error *wire.Error `json:"error"`
		}{werr})
		return
	}
	h.writeBody(w, status, b)
	putBuf(bp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

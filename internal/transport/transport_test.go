package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/lang/ast"
	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/obs"
	"repro/internal/sem/mem"
	"repro/internal/server"
	"repro/internal/transport/wire"
	"repro/internal/types"
)

// echoSrc is the canonical secret-dependent workload: a mitigated
// sleep on the secret, then a public reply.
const echoSrc = `
var h : H;
var reply : L;
mitigate (1, H) [L,L] {
    sleep(h % 64) [H,H];
}
reply := 1;
`

func buildProg(t testing.TB, src string) (*ast.Program, *types.Result) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := types.Check(p, lattice.TwoPoint())
	if err != nil {
		t.Fatal(err)
	}
	return p, r
}

// newService builds a pool + handler + httptest server over echoSrc.
func newService(t testing.TB, popts server.PoolOptions, hopts Options) (*Handler, *httptest.Server) {
	t.Helper()
	p, r := buildProg(t, echoSrc)
	if popts.Env == nil {
		popts.Env = hw.NewPartitioned(r.Lat, hw.Table1Config())
	}
	if popts.Workers == 0 {
		popts.Workers = 2
	}
	pool, err := server.NewPool(p, r, popts)
	if err != nil {
		t.Fatal(err)
	}
	hopts.Pool = pool
	hopts.Prog = p
	h, err := New(hopts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		pool.Close()
	})
	return h, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestRunRoundTrip(t *testing.T) {
	_, ts := newService(t, server.PoolOptions{Workers: 1}, Options{})

	// Serial in-process reference with an identical environment.
	p, r := buildProg(t, echoSrc)
	ref, err := server.New(p, r, server.Options{Env: hw.NewPartitioned(r.Lat, hw.Table1Config())})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Handle(context.Background(), func(m *mem.Memory) { m.Set("h", 5) })
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, ts.URL+"/v1/run", wire.RunRequest{
		Inputs: map[string]int64{"h": 5},
		Trace:  true, Mitigations: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got wire.RunResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != wire.SchemaVersion {
		t.Errorf("schema version %d, want %d", got.SchemaVersion, wire.SchemaVersion)
	}
	if got.Time != want.Time {
		t.Errorf("Time over HTTP = %d, in-process = %d", got.Time, want.Time)
	}
	if got.Mispredictions != want.Mispredictions {
		t.Errorf("Mispredictions over HTTP = %d, in-process = %d", got.Mispredictions, want.Mispredictions)
	}
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("trace length %d, want %d", len(got.Trace), len(want.Trace))
	}
	for i, e := range want.Trace {
		if got.Trace[i] != (wire.Event{Var: e.Var, Value: e.Value, Time: e.Time}) {
			t.Errorf("trace[%d] = %+v, want %+v", i, got.Trace[i], e)
		}
	}
	if len(got.Mitigations) != len(want.Mitigations) {
		t.Fatalf("mitigations length %d, want %d", len(got.Mitigations), len(want.Mitigations))
	}
}

// TestBatchMatchesInProcess is the acceptance check: a 100-request
// batch over HTTP must be byte-identical, item for item, to the same
// burst through Pool.HandleAll in process.
func TestBatchMatchesInProcess(t *testing.T) {
	const n = 100
	const workers = 4
	_, ts := newService(t, server.PoolOptions{Workers: workers}, Options{})

	// In-process reference: an identically configured pool.
	p, r := buildProg(t, echoSrc)
	refPool, err := server.NewPool(p, r, server.PoolOptions{
		Workers: workers,
		Options: server.Options{Env: hw.NewPartitioned(r.Lat, hw.Table1Config())},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer refPool.Close()

	wireReqs := make([]wire.RunRequest, n)
	refReqs := make([]server.Request, n)
	for i := 0; i < n; i++ {
		h := int64(i % 17)
		wireReqs[i] = wire.RunRequest{Inputs: map[string]int64{"h": h}, Trace: true, Mitigations: true}
		refReqs[i] = func(m *mem.Memory) { m.Set("h", h) }
	}
	refResps, err := refPool.HandleAll(context.Background(), refReqs)
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, ts.URL+"/v1/batch", wire.BatchRequest{Requests: wireReqs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got wire.BatchResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != n {
		t.Fatalf("%d results, want %d", len(got.Results), n)
	}
	for i, res := range got.Results {
		if res.Error != nil {
			t.Fatalf("result %d failed: %v", i, res.Error)
		}
		want := toRunResponse(refResps[i], wireReqs[i])
		gotJSON, _ := json.Marshal(res.Response)
		wantJSON, _ := json.Marshal(want)
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("result %d over HTTP differs from in-process HandleAll:\n got  %s\n want %s",
				i, gotJSON, wantJSON)
		}
	}
}

func TestUnknownInputRejected(t *testing.T) {
	_, ts := newService(t, server.PoolOptions{}, Options{})
	resp, body := postJSON(t, ts.URL+"/v1/run", wire.RunRequest{Inputs: map[string]int64{"nope": 1}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	var envelope struct {
		Error *wire.Error `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error == nil {
		t.Fatalf("bad error envelope: %s", body)
	}
	if envelope.Error.Code != wire.CodeUnknownInput {
		t.Errorf("code %q, want %q", envelope.Error.Code, wire.CodeUnknownInput)
	}
}

func TestMalformedAndVersionedRequestsRejected(t *testing.T) {
	_, ts := newService(t, server.PoolOptions{}, Options{})

	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}

	resp2, body := postJSON(t, ts.URL+"/v1/run", wire.RunRequest{SchemaVersion: 99})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("future schema version: status %d, want 400: %s", resp2.StatusCode, body)
	}
}

// TestSaturationMapsTo503 is the overload acceptance check: queue
// saturation (here injected deterministically through the fault layer
// the pool already uses for load-shed testing) must surface as 503
// with a Retry-After header and the stable overloaded code.
func TestSaturationMapsTo503(t *testing.T) {
	_, ts := newService(t, server.PoolOptions{
		ShedOnSaturation: true,
		Options: server.Options{
			Injector: fault.New(1, fault.Plan{fault.QueueSaturation: {Rate: 1}}),
		},
	}, Options{RetryAfter: 2 * time.Second})

	resp, body := postJSON(t, ts.URL+"/v1/run", wire.RunRequest{Inputs: map[string]int64{"h": 1}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	var envelope struct {
		Error *wire.Error `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error == nil {
		t.Fatalf("bad error envelope: %s", body)
	}
	if envelope.Error.Code != wire.CodeOverloaded {
		t.Errorf("code %q, want %q", envelope.Error.Code, wire.CodeOverloaded)
	}
	if envelope.Error.RetryAfterMS != 2000 {
		t.Errorf("retry_after_ms = %d, want 2000", envelope.Error.RetryAfterMS)
	}
}

func TestMaxInFlightSheds(t *testing.T) {
	h, ts := newService(t, server.PoolOptions{}, Options{MaxInFlight: 1})
	// Occupy the only admission slot directly (white-box), then a real
	// request must shed at the transport before touching the pool.
	if werr := h.begin(); werr != nil {
		t.Fatalf("first admission refused: %v", werr)
	}
	defer h.end()
	resp, body := postJSON(t, ts.URL+"/v1/run", wire.RunRequest{Inputs: map[string]int64{"h": 1}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// TestGracefulShutdownDrains exercises the drain protocol
// deterministically: with one admission in flight, Shutdown must
// block, new work must be refused with shutting_down, and the last
// request out must release the shutdown, which then closes the pool.
func TestGracefulShutdownDrains(t *testing.T) {
	h, ts := newService(t, server.PoolOptions{}, Options{})

	if werr := h.begin(); werr != nil {
		t.Fatalf("admission refused: %v", werr)
	}
	done := make(chan error, 1)
	go func() { done <- h.Shutdown(context.Background()) }()

	// Shutdown must be parked on the in-flight request.
	for !h.Draining() {
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned %v with a request still in flight", err)
	case <-time.After(10 * time.Millisecond):
	}

	// New work is refused while draining.
	resp, body := postJSON(t, ts.URL+"/v1/run", wire.RunRequest{Inputs: map[string]int64{"h": 1}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status while draining = %d, want 503: %s", resp.StatusCode, body)
	}
	var envelope struct {
		Error *wire.Error `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error == nil {
		t.Fatalf("bad error envelope: %s", body)
	}
	if envelope.Error.Code != wire.CodeShuttingDown {
		t.Errorf("code %q, want %q", envelope.Error.Code, wire.CodeShuttingDown)
	}

	// The last in-flight request leaving completes the drain.
	h.end()
	if err := <-done; err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	// The pool is closed: in-process submission fails accordingly.
	if _, err := h.opts.Pool.Handle(context.Background(), func(*mem.Memory) {}); err == nil {
		t.Error("pool still accepting work after Shutdown")
	}
}

// TestGracefulShutdownUnderLoad drives a real in-flight HTTP request
// (held open by an injected shard stall) through a full drain.
func TestGracefulShutdownUnderLoad(t *testing.T) {
	h, ts := newService(t, server.PoolOptions{
		Workers: 1,
		Options: server.Options{
			Injector: fault.New(1, fault.Plan{fault.ShardStall: {Rate: 1, Stall: 30 * time.Millisecond}}),
		},
	}, Options{})

	type outcome struct {
		status int
		body   []byte
	}
	got := make(chan outcome, 1)
	go func() {
		resp, body := postJSON(t, ts.URL+"/v1/run", wire.RunRequest{Inputs: map[string]int64{"h": 3}})
		got <- outcome{resp.StatusCode, body}
	}()

	// Wait until the request is admitted, then drain.
	for {
		h.mu.Lock()
		n := h.inFlight
		h.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := h.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	o := <-got
	if o.status != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d: %s", o.status, o.body)
	}
}

func TestHealthz(t *testing.T) {
	h, ts := newService(t, server.PoolOptions{Workers: 3}, Options{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health wire.Health
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != wire.StatusOK || health.Workers != 3 || health.Engine != "tree" {
		t.Errorf("health = %+v", health)
	}
	_ = h
}

// TestMetricsPromMatchesExport is the exposition acceptance check:
// every counter scraped from /v1/metrics must equal the corresponding
// obs.Export field from the JSON form of the same endpoint.
func TestMetricsPromMatchesExport(t *testing.T) {
	_, ts := newService(t, server.PoolOptions{}, Options{})
	for i := 0; i < 8; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/run", wire.RunRequest{Inputs: map[string]int64{"h": int64(i)}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warmup run %d: status %d: %s", i, resp.StatusCode, body)
		}
	}

	jr, err := http.Get(ts.URL + "/v1/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var export obs.Export
	if err := json.NewDecoder(jr.Body).Decode(&export); err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()

	pr, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := pr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prometheus Content-Type = %q", ct)
	}
	promText, err := io.ReadAll(pr.Body)
	pr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	scraped := parseProm(t, string(promText))
	for name, want := range map[string]uint64{
		"timingc_requests_total":                         export.Requests,
		"timingc_failures_total":                         export.Failures,
		"timingc_steps_total":                            export.Steps,
		"timingc_cycles_total":                           export.Cycles,
		"timingc_padding_cycles_total":                   export.PaddingCycles,
		"timingc_useful_cycles_total":                    export.UsefulCycles,
		"timingc_mitigations_total":                      export.Mitigations,
		"timingc_mispredictions_total":                   export.Mispredictions,
		"timingc_schedule_bumps_total":                   export.ScheduleBumps,
		"timingc_faults_total":                           export.Faults,
		"timingc_retries_total":                          export.Retries,
		"timingc_sheds_total":                            export.Sheds,
		"timingc_breaker_opens_total":                    export.BreakerOpens,
		"timingc_breaker_closes_total":                   export.BreakerCloses,
		"timingc_latency_cycles_count":                   export.Latency.Count,
		"timingc_latency_cycles_sum":                     export.Latency.Sum,
		`timingc_hw_events_total{unit="l1d",kind="hit"}`: export.HW.L1DHits,
		`timingc_hw_events_total{unit="bp",kind="miss"}`: export.HW.BPMisses,
	} {
		got, ok := scraped[name]
		if !ok {
			t.Errorf("metric %s missing from exposition", name)
			continue
		}
		if got != want {
			t.Errorf("%s = %d, exposition disagrees with export %d", name, got, want)
		}
	}
	if export.Requests != 8 {
		t.Errorf("export.Requests = %d, want 8", export.Requests)
	}
}

// parseProm reads "name value" and "name{labels} value" sample lines.
func parseProm(t *testing.T, text string) map[string]uint64 {
	t.Helper()
	out := make(map[string]uint64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseUint(line[sp+1:], 10, 64)
		if err != nil {
			// Gauges may be floats; only integer samples participate in
			// the comparison.
			continue
		}
		out[line[:sp]] = v
	}
	return out
}

func TestPoolHandleAllErrsReportsPerItem(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	pool, err := server.NewPool(p, r, server.PoolOptions{
		Workers: 2,
		Options: server.Options{Env: hw.NewPartitioned(r.Lat, hw.Table1Config())},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	reqs := make([]server.Request, 6)
	for i := range reqs {
		h := int64(i)
		reqs[i] = func(m *mem.Memory) { m.Set("h", h) }
	}
	resps, errs := pool.HandleAllErrs(context.Background(), reqs)
	if len(resps) != len(reqs) || len(errs) != len(reqs) {
		t.Fatalf("lengths: %d resps, %d errs", len(resps), len(errs))
	}
	for i := range reqs {
		if errs[i] != nil {
			t.Errorf("request %d failed: %v", i, errs[i])
		}
		if resps[i] == nil {
			t.Errorf("request %d: nil response without error", i)
		}
	}
}

func TestHandlerRequiresPoolAndProg(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	pool, err := server.NewPool(p, r, server.PoolOptions{
		Workers: 1,
		Options: server.Options{Env: hw.NewFlat(r.Lat, 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := New(Options{Prog: p}); err == nil {
		t.Error("New without Pool must fail")
	}
	if _, err := New(Options{Pool: pool}); err == nil {
		t.Error("New without Prog must fail")
	}
	if _, err := New(Options{Pool: pool, Prog: p}); err != nil {
		t.Errorf("New with both = %v", err)
	}
}

package transport

import (
	"bufio"
	"bytes"
	"errors"
	"net/http"

	"repro/internal/server"
	"repro/internal/transport/wire"
)

// streamItem is one unit of work handed from the decode loop to the
// write loop, in submission order. Exactly one of fut (a pending
// anonymous submission) or res (an already-resolved result: a tenanted
// run, a per-item error, or a terminal error line) is set.
type streamItem struct {
	fut *server.Future
	req wire.RunRequest
	res *wire.BatchResult
	// terminal marks the stream's final line (malformed input, drain):
	// the decode loop stops after sending it.
	terminal bool
}

// handleStream serves POST /v1/stream: NDJSON request/response
// pipelining over one connection. Each input line is a wire.RunRequest;
// each output line is a wire.BatchResult ({"response":{...}} or
// {"error":{...}}), in submission order. The protocol is the batch
// endpoint unrolled over time, and the handler is two loops:
//
//   - the decode loop reads lines and submits anonymous items to the
//     pool without waiting, so one connection keeps every shard busy
//     with no per-request HTTP round trip; tenanted items run inline,
//     exactly like a tenanted batch item, so a tenant's epochs advance
//     in submission order and a budget denial surfaces as a per-item
//     leakage_budget_exceeded error line (the 429 analogue) while the
//     stream continues;
//   - the write loop resolves items in FIFO order and streams results
//     back, flushing whenever the next item is not already waiting —
//     a client that pipelines N requests and then blocks on results
//     never deadlocks against server-side buffering.
//
// The channel between them bounds the in-flight window at
// Options.StreamWindow. A line the codec rejects terminates the stream
// after a final error line (NDJSON framing cannot be trusted past a
// decode failure). Shutdown is two-phase: the stream holds one
// admission slot for its whole life, and the decode loop checks
// Draining() per line — on drain, in-flight results are delivered,
// then a final shutting_down error line ends the stream.
func (h *Handler) handleStream(w http.ResponseWriter, r *http.Request) {
	// HTTP/1.x servers normally stop reading the request body once the
	// response begins; a pipelined protocol needs both directions open
	// at once. Full duplex must be enabled before ANY response bytes —
	// including a refusal — because without it the server drains the
	// request body before committing headers, which deadlocks against a
	// client that pipes requests and waits for the response. Never close
	// r.Body here for the same reason: (*body).Close performs that same
	// bounded drain. (HTTP/2 is full-duplex already; ErrNotSupported
	// from a test recorder is equally fine to ignore.)
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()

	if werr := h.begin(); werr != nil {
		h.writeError(w, werr)
		return
	}
	defer h.end()

	h.metrics.StreamOpened()
	defer h.metrics.StreamClosed()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	_ = rc.Flush() // commit headers so the client's round trip completes

	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), maxPooledBuf)

	items := make(chan streamItem, h.opts.StreamWindow)
	// dead closes when the write loop hits a write error (the client
	// went away); the decode loop then stops reading. The write loop
	// keeps draining items until the channel closes either way, so
	// sends never block on a dead peer.
	dead := make(chan struct{})
	done := make(chan struct{})
	go h.streamWriteLoop(w, r, rc, items, dead, done)
	defer func() { close(items); <-done }()

	// send hands one item to the write loop; false when the client is
	// gone and reading more input is pointless.
	send := func(it streamItem) bool {
		items <- it
		select {
		case <-dead:
			return false
		default:
			return true
		}
	}
	fail := func(werr *wire.Error) {
		send(streamItem{res: &wire.BatchResult{Error: werr}, terminal: true})
	}

	for sc.Scan() {
		line := sc.Bytes()
		h.metrics.AddBytesIn(len(line) + 1)
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		select {
		case <-dead:
			return
		default:
		}
		if h.Draining() {
			fail(&wire.Error{
				Code:         wire.CodeShuttingDown,
				Message:      "service is draining",
				RetryAfterMS: h.opts.RetryAfter.Milliseconds(),
			})
			return
		}
		var req wire.RunRequest
		if err := h.codec.DecodeRunRequest(line, &req, true); err != nil {
			fail(invalidRequest(err))
			return
		}
		if werr := checkVersion(req.SchemaVersion); werr != nil {
			fail(werr)
			return
		}
		sreq, werr := h.toRequest(req)
		if werr != nil {
			fail(werr)
			return
		}
		tenant, werr := h.tenantOf(req, r)
		if werr != nil {
			fail(werr)
			return
		}
		h.metrics.AddStreamItems(1)

		if tenant == "" {
			fut, err := h.opts.Pool.Submit(r.Context(), sreq)
			if err != nil {
				// Admission failures are per-item outcomes; a closed
				// pool additionally ends the stream.
				closed := errors.Is(err, server.ErrPoolClosed)
				if !send(streamItem{res: &wire.BatchResult{Error: h.toWireError(err)}, terminal: closed}) || closed {
					return
				}
				continue
			}
			if !send(streamItem{fut: fut, req: req}) {
				return
			}
			continue
		}

		// Tenanted: run inline so this tenant's admissions observe the
		// leakage account in submission order.
		resp, info, werr := h.runSession(r.Context(), tenant, sreq)
		if werr != nil {
			// Per-item denial (leakage budget, pool errors): the stream
			// continues, mirroring a failed item inside a batch.
			if !send(streamItem{res: &wire.BatchResult{Error: werr}}) {
				return
			}
			continue
		}
		rr := toRunResponse(resp, req)
		rr.Tenant = info.Tenant
		rr.Epoch = info.Epoch
		rr.LeakageBits = info.SpentBits
		server.ReleaseResponse(resp)
		if !send(streamItem{res: &wire.BatchResult{Response: &rr}}) {
			return
		}
	}
}

// streamWriteLoop resolves items in FIFO order and writes one NDJSON
// result line per item. Output is buffered; the buffer is flushed
// exactly when the next item is not already available, so bytes never
// sit unflushed while the loop blocks and back-to-back results still
// coalesce into large writes.
func (h *Handler) streamWriteLoop(w http.ResponseWriter, r *http.Request, rc *http.ResponseController, items <-chan streamItem, dead chan<- struct{}, done chan<- struct{}) {
	defer close(done)
	bw := bufio.NewWriterSize(w, 32<<10)
	failed := false

	writeResult := func(res *wire.BatchResult) {
		bp := getBuf()
		defer putBuf(bp)
		b, err := h.codec.AppendBatchResult((*bp)[:0], res)
		*bp = b[:0]
		if err != nil {
			b, err = h.codec.AppendBatchResult(b[:0], &wire.BatchResult{
				Error: &wire.Error{Code: wire.CodeInternal, Message: err.Error()},
			})
			if err != nil {
				failed = true
				close(dead)
				return
			}
		}
		b = append(b, '\n')
		*bp = b[:0]
		n, werr := bw.Write(b)
		h.metrics.AddBytesOut(n)
		if werr != nil {
			failed = true
			close(dead)
		}
	}

	for {
		var it streamItem
		var ok bool
		select {
		case it, ok = <-items:
		default:
			// Nothing queued: everything computed so far must reach the
			// client before this loop blocks.
			if !failed {
				if err := bw.Flush(); err != nil {
					failed = true
					close(dead)
				}
				_ = rc.Flush()
			}
			it, ok = <-items
		}
		if !ok {
			break
		}
		res := it.res
		if it.fut != nil {
			resp, err := it.fut.Wait(r.Context())
			if err != nil {
				res = &wire.BatchResult{Error: h.toWireError(err)}
			} else {
				rr := toRunResponse(resp, it.req)
				res = &wire.BatchResult{Response: &rr}
				server.ReleaseResponse(resp)
			}
		}
		if !failed {
			writeResult(res)
		}
	}
	if !failed {
		if err := bw.Flush(); err == nil {
			_ = rc.Flush()
		}
	}
}

package transport

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/session"
	"repro/internal/transport/wire"
)

func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(raw)
}

// newSessions builds a Manager over the echoSrc lattice.
func newSessions(t *testing.T, opts session.Options) *session.Manager {
	t.Helper()
	if opts.Lat == nil {
		opts.Lat = lattice.TwoPoint()
	}
	mgr, err := session.NewManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

func runTenant(t *testing.T, url, tenant string, h int64) (*http.Response, wire.RunResponse, *wire.Error) {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/run", wire.RunRequest{
		Tenant: tenant,
		Inputs: map[string]int64{"h": h},
	})
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error *wire.Error `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatalf("status %d with unparsable body: %s", resp.StatusCode, body)
		}
		return resp, wire.RunResponse{}, e.Error
	}
	var out wire.RunResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return resp, out, nil
}

func TestTenantSessionAccumulates(t *testing.T) {
	mgr := newSessions(t, session.Options{})
	_, ts := newService(t, server0(), Options{Sessions: mgr})

	var last wire.RunResponse
	for i := 1; i <= 3; i++ {
		resp, out, werr := runTenant(t, ts.URL, "alice", 41)
		if werr != nil {
			t.Fatalf("run %d: %d %v", i, resp.StatusCode, werr)
		}
		if out.Tenant != "alice" {
			t.Errorf("run %d: tenant = %q", i, out.Tenant)
		}
		if out.Epoch != i {
			t.Errorf("run %d: epoch = %d, want %d", i, out.Epoch, i)
		}
		if out.LeakageBits <= last.LeakageBits {
			t.Errorf("run %d: leakage %v must grow past %v", i, out.LeakageBits, last.LeakageBits)
		}
		last = out
	}
	if got, ok := mgr.Peek("alice"); !ok || got.Epoch != 3 {
		t.Errorf("manager account: %+v ok=%v", got, ok)
	}
}

func TestTenantHeaderFallback(t *testing.T) {
	mgr := newSessions(t, session.Options{})
	_, ts := newService(t, server0(), Options{Sessions: mgr})

	req, err := http.NewRequest("POST", ts.URL+"/v1/run",
		jsonBody(t, wire.RunRequest{Inputs: map[string]int64{"h": 1}}))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TenantHeader, "carol")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out wire.RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Tenant != "carol" || out.Epoch != 1 {
		t.Errorf("header tenant must open a session: %+v", out)
	}
}

func TestAnonymousRequestsStayAnonymous(t *testing.T) {
	mgr := newSessions(t, session.Options{})
	_, ts := newService(t, server0(), Options{Sessions: mgr})

	resp, body := postJSON(t, ts.URL+"/v1/run", wire.RunRequest{Inputs: map[string]int64{"h": 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out wire.RunResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Tenant != "" || out.Epoch != 0 || out.LeakageBits != 0 {
		t.Errorf("anonymous response must carry no session fields: %+v", out)
	}
	if n := mgr.Len(); n != 0 {
		t.Errorf("anonymous requests must open no sessions, got %d", n)
	}
}

func TestBudgetDenialIs429WithRetryAfter(t *testing.T) {
	met := obs.NewMetrics()
	mgr := newSessions(t, session.Options{BudgetBits: 10, TTL: time.Minute, Metrics: met})
	popts := server0()
	popts.Metrics = met
	_, ts := newService(t, popts, Options{Sessions: mgr})

	// Burn bob's budget: big secrets mispredict and pile up T and K
	// until the cumulative bound crosses 10 bits.
	denied := false
	var resp *http.Response
	var werr *wire.Error
	for i := 0; i < 50 && !denied; i++ {
		resp, _, werr = runTenant(t, ts.URL, "bob", 63)
		denied = werr != nil
	}
	if !denied {
		t.Fatal("budget of 10 bits must eventually deny")
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429", resp.StatusCode)
	}
	if werr.Code != wire.CodeLeakageBudget {
		t.Errorf("code = %q, want %q", werr.Code, wire.CodeLeakageBudget)
	}
	if werr.RetryAfterMS != time.Minute.Milliseconds() {
		t.Errorf("retry_after_ms = %d, want the TTL %d", werr.RetryAfterMS, time.Minute.Milliseconds())
	}
	if got := resp.Header.Get("Retry-After"); got != "60" {
		t.Errorf("Retry-After header = %q, want \"60\"", got)
	}

	// An uncapped tenant on the same pool is unaffected.
	if _, _, werr := runTenant(t, ts.URL, "alice", 63); werr != nil {
		t.Errorf("alice must be admitted while bob is denied: %v", werr)
	}
	if s := met.Snapshot(); s.BudgetDenials == 0 {
		t.Error("denials must be counted")
	}
}

func TestSessionBatchRunsInOrder(t *testing.T) {
	mgr := newSessions(t, session.Options{})
	_, ts := newService(t, server0(), Options{Sessions: mgr})

	batch := wire.BatchRequest{Requests: []wire.RunRequest{
		{Tenant: "alice", Inputs: map[string]int64{"h": 1}},
		{Inputs: map[string]int64{"h": 2}}, // anonymous rides along
		{Tenant: "alice", Inputs: map[string]int64{"h": 3}},
		{Tenant: "bob", Inputs: map[string]int64{"h": 4}},
	}}
	resp, body := postJSON(t, ts.URL+"/v1/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out wire.BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("results = %d", len(out.Results))
	}
	r0, r2, r3 := out.Results[0].Response, out.Results[2].Response, out.Results[3].Response
	if r0 == nil || r2 == nil || r3 == nil {
		t.Fatalf("session items must succeed: %+v", out.Results)
	}
	if r0.Epoch != 1 || r2.Epoch != 2 {
		t.Errorf("alice's epochs must advance in batch order: %d then %d", r0.Epoch, r2.Epoch)
	}
	if r3.Tenant != "bob" || r3.Epoch != 1 {
		t.Errorf("bob must get his own session: %+v", r3)
	}
	if anon := out.Results[1].Response; anon == nil || anon.Tenant != "" {
		t.Errorf("anonymous item must stay anonymous: %+v", anon)
	}
}

func TestV1SchemaStillAccepted(t *testing.T) {
	mgr := newSessions(t, session.Options{})
	_, ts := newService(t, server0(), Options{Sessions: mgr})

	resp, body := postJSON(t, ts.URL+"/v1/run", wire.RunRequest{
		SchemaVersion: 1,
		Inputs:        map[string]int64{"h": 1},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 request must be served, got %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/run", wire.RunRequest{
		SchemaVersion: wire.SchemaVersion + 1,
		Inputs:        map[string]int64{"h": 1},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("future schema must be rejected, got %d: %s", resp.StatusCode, body)
	}
}

// server0 is a 1-worker pool config for deterministic session tests.
func server0() server.PoolOptions {
	return server.PoolOptions{Workers: 1}
}

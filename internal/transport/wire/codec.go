package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
)

// Codec is the seam between the transport layers and the bytes on the
// wire: append-style encoders (grow a caller-owned buffer, so pooled
// buffers make the steady state allocation-free) and in-place decoders
// for every hot message type. Two implementations exist: Std below
// wraps encoding/json, and fastjson.Codec is the hand-rolled fast path
// proven byte-identical to it. Both server and client default to the
// fast codec; `timingc serve -codec std` selects the stdlib fallback.
//
// Decoders take a strict flag: strict rejects unknown object keys with
// an error naming the field (the server's request-validation posture),
// lenient skips them (the client's forward-compatibility posture).
// Either way trailing non-whitespace after the document is an error.
type Codec interface {
	// Name identifies the codec ("std", "fast") in banners and benches.
	Name() string

	AppendRunRequest(dst []byte, v *RunRequest) ([]byte, error)
	AppendRunResponse(dst []byte, v *RunResponse) ([]byte, error)
	AppendBatchRequest(dst []byte, v *BatchRequest) ([]byte, error)
	AppendBatchResponse(dst []byte, v *BatchResponse) ([]byte, error)
	AppendBatchResult(dst []byte, v *BatchResult) ([]byte, error)
	AppendErrorEnvelope(dst []byte, v *Error) ([]byte, error)

	DecodeRunRequest(data []byte, v *RunRequest, strict bool) error
	DecodeRunResponse(data []byte, v *RunResponse, strict bool) error
	DecodeBatchRequest(data []byte, v *BatchRequest, strict bool) error
	DecodeBatchResponse(data []byte, v *BatchResponse, strict bool) error
	DecodeBatchResult(data []byte, v *BatchResult, strict bool) error
	DecodeErrorEnvelope(data []byte, v *Error, strict bool) error
}

// Std is the encoding/json implementation of Codec — the reference
// the fast codec is proven against, and the runtime fallback behind
// `-codec std`.
type Std struct{}

// Name implements Codec.
func (Std) Name() string { return "std" }

// errorEnvelope is the {"error":{...}} failure body shape.
type errorEnvelope struct {
	Error *Error `json:"error"`
}

func stdAppend(dst []byte, v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return dst, err
	}
	return append(dst, b...), nil
}

// AppendRunRequest implements Codec.
func (Std) AppendRunRequest(dst []byte, v *RunRequest) ([]byte, error) { return stdAppend(dst, v) }

// AppendRunResponse implements Codec.
func (Std) AppendRunResponse(dst []byte, v *RunResponse) ([]byte, error) { return stdAppend(dst, v) }

// AppendBatchRequest implements Codec.
func (Std) AppendBatchRequest(dst []byte, v *BatchRequest) ([]byte, error) { return stdAppend(dst, v) }

// AppendBatchResponse implements Codec.
func (Std) AppendBatchResponse(dst []byte, v *BatchResponse) ([]byte, error) {
	return stdAppend(dst, v)
}

// AppendBatchResult implements Codec.
func (Std) AppendBatchResult(dst []byte, v *BatchResult) ([]byte, error) { return stdAppend(dst, v) }

// AppendErrorEnvelope implements Codec.
func (Std) AppendErrorEnvelope(dst []byte, v *Error) ([]byte, error) {
	return stdAppend(dst, errorEnvelope{v})
}

// stdDecode applies json.Unmarshal semantics with an optional
// DisallowUnknownFields: a Decoder provides the strict mode, and the
// explicit second Decode call restores Unmarshal's trailing-data
// rejection that Decoder alone does not have.
func stdDecode(data []byte, v any, strict bool) error {
	if !strict {
		return json.Unmarshal(data, v)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var trailing any
	if err := dec.Decode(&trailing); err != io.EOF {
		return errors.New("invalid character after top-level value")
	}
	return nil
}

// DecodeRunRequest implements Codec.
func (Std) DecodeRunRequest(data []byte, v *RunRequest, strict bool) error {
	return stdDecode(data, v, strict)
}

// DecodeRunResponse implements Codec.
func (Std) DecodeRunResponse(data []byte, v *RunResponse, strict bool) error {
	return stdDecode(data, v, strict)
}

// DecodeBatchRequest implements Codec.
func (Std) DecodeBatchRequest(data []byte, v *BatchRequest, strict bool) error {
	return stdDecode(data, v, strict)
}

// DecodeBatchResponse implements Codec.
func (Std) DecodeBatchResponse(data []byte, v *BatchResponse, strict bool) error {
	return stdDecode(data, v, strict)
}

// DecodeBatchResult implements Codec.
func (Std) DecodeBatchResult(data []byte, v *BatchResult, strict bool) error {
	return stdDecode(data, v, strict)
}

// DecodeErrorEnvelope implements Codec.
func (Std) DecodeErrorEnvelope(data []byte, v *Error, strict bool) error {
	env := errorEnvelope{Error: v}
	return stdDecode(data, &env, strict)
}

package wire

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden wire fixtures")

// goldenDir is the fixture home; it lives under internal/transport so
// the transport tests and this package share one set of frozen bytes.
const goldenDir = "../testdata/wire"

// goldenCases are canonical instances of every wire type. Their JSON
// renderings are the compatibility contract: if an innocent-looking
// struct change alters these bytes, the schema changed, and either the
// change is wrong or SchemaVersion must bump along with the fixtures
// (go test ./internal/transport/wire -update).
var goldenCases = []struct {
	name  string
	value any
}{
	{"run_request", RunRequest{
		SchemaVersion: SchemaVersion,
		Tenant:        "alice",
		Inputs:        map[string]int64{"h": 42},
		Trace:         true,
		Mitigations:   true,
	}},
	{"run_response", RunResponse{
		SchemaVersion:  SchemaVersion,
		Index:          7,
		Shard:          1,
		ShardIndex:     3,
		Time:           4096,
		Mispredictions: 1,
		Tenant:         "alice",
		Epoch:          8,
		LeakageBits:    26.5,
		Trace:          []Event{{Var: "reply", Value: 1, Time: 4095}},
		Mitigations:    []MitRecord{{ID: 1, Duration: 4096, Elapsed: 731, Start: 0, Mispredicted: true}},
	}},
	{"batch_request", BatchRequest{
		SchemaVersion: SchemaVersion,
		Requests: []RunRequest{
			{Inputs: map[string]int64{"h": 1}},
			{Inputs: map[string]int64{"h": 2}, Trace: true},
		},
	}},
	{"batch_response", BatchResponse{
		SchemaVersion: SchemaVersion,
		Results: []BatchResult{
			{Response: &RunResponse{SchemaVersion: SchemaVersion, Index: 0, Time: 1024}},
			{Error: &Error{Code: CodeOverloaded, Message: "queue saturated", RetryAfterMS: 1000}},
		},
	}},
	{"error_budget", Error{Code: CodeBudgetExceeded, Message: "request exceeded step budget"}},
	{"error_leakage_budget", Error{
		Code:         CodeLeakageBudget,
		Message:      `tenant "bob" leakage budget exceeded (12.31 of 10.00 bits)`,
		RetryAfterMS: 60000,
	}},
	{"health", Health{SchemaVersion: SchemaVersion, Status: StatusOK, Engine: "vm", Workers: 4}},
}

// TestGoldenFixtures freezes the wire schema byte for byte, in both
// directions: marshaling the canonical values must reproduce the
// fixtures exactly, and the fixtures must round-trip losslessly.
func TestGoldenFixtures(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(goldenDir, tc.name+".json")
			got, err := json.MarshalIndent(tc.value, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			if *update {
				if err := os.MkdirAll(goldenDir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("wire schema for %s changed:\n got:\n%s\n want:\n%s\n"+
					"If this is intentional, bump SchemaVersion and refresh with -update.",
					tc.name, got, want)
			}
			// Round-trip: the frozen bytes decode back to the canonical
			// value (marshaling again reproduces them), so old clients'
			// payloads keep parsing.
			fresh := newValue(tc.value)
			if err := json.Unmarshal(want, fresh); err != nil {
				t.Fatalf("golden fixture no longer parses: %v", err)
			}
			again, err := json.MarshalIndent(deref(fresh), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(append(again, '\n'), want) {
				t.Errorf("fixture %s does not round-trip:\n%s", tc.name, again)
			}
		})
	}
}

// newValue allocates a fresh zero value of v's type for unmarshaling.
func newValue(v any) any {
	switch v.(type) {
	case RunRequest:
		return new(RunRequest)
	case RunResponse:
		return new(RunResponse)
	case BatchRequest:
		return new(BatchRequest)
	case BatchResponse:
		return new(BatchResponse)
	case Error:
		return new(Error)
	case Health:
		return new(Health)
	}
	panic("unknown golden type")
}

// deref returns the pointee so marshaling matches the value case.
func deref(v any) any {
	switch p := v.(type) {
	case *RunRequest:
		return *p
	case *RunResponse:
		return *p
	case *BatchRequest:
		return *p
	case *BatchResponse:
		return *p
	case *Error:
		return *p
	case *Health:
		return *p
	}
	return v
}

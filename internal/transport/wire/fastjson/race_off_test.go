//go:build !race

package fastjson

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so the zero-alloc pins only hold without
// it.
const raceEnabled = false

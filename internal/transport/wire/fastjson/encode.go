// Package fastjson is the hand-rolled wire codec for the mitigation
// service's hot message types: RunRequest, RunResponse, BatchRequest,
// BatchResponse, BatchResult, and the error envelope.
//
// The encoders are append-style (they grow a caller-owned []byte, so a
// pooled buffer makes the steady state allocation-free) and the
// decoders parse in place with an interning scratch, pinned at zero
// steady-state allocations by the AllocsPerRun tests. Both directions
// are proven equivalent to encoding/json: the encoders byte-identical
// on every frozen golden fixture and under the FuzzWireCodecIdentity
// differential fuzz target, the decoders accept/reject the same
// documents and produce deeply equal values.
//
// encoding/json behaviors deliberately replicated, because they are
// observable in the bytes or in accept/reject decisions:
//
//   - HTML-escaping of <, >, & (Marshal's default),  /
//     escapes, and U+FFFD substitution for invalid UTF-8;
//   - map keys sorted lexicographically;
//   - the float format (%f between 1e-6 and 1e21, else %e with the
//     exponent's leading zero trimmed);
//   - omitempty semantics per field, nil slices as null;
//   - case-insensitive field matching on decode (exact match first),
//     null handling (no-op for scalars, nil for maps/slices/pointers),
//     merge semantics into non-zero destinations, and rejection of
//     trailing data (json.Unmarshal semantics, not Decoder's).
package fastjson

import (
	"math"
	"sort"
	"strconv"
	"unicode/utf8"

	"repro/internal/transport/wire"
)

const hexDigits = "0123456789abcdef"

// appendString appends s as a JSON string literal, byte-identical to
// encoding/json's Marshal (escapeHTML = true).
func appendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if safeSet(b) {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Control characters (and <, >, & under HTML escaping)
				// become \u00xx exactly as encoding/json writes them.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// safeSet reports whether an ASCII byte passes through unescaped under
// encoding/json's HTML-escaping string encoder.
func safeSet(b byte) bool {
	return b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&'
}

// appendFloat appends f in encoding/json's float64 format: %f for
// magnitudes in [1e-6, 1e21), otherwise %e with a trimmed exponent.
// Non-finite values return ok=false (Marshal errors on them).
func appendFloat(dst []byte, f float64) ([]byte, bool) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return dst, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Trim "e-09" to "e-9", as encoding/json does.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, true
}

// appendInputs appends the inputs map with keys sorted, matching
// encoding/json's deterministic map ordering. The small-N sort runs on
// a scratch key slice owned by the caller-passed buffer to stay
// allocation-free for typical request shapes.
func appendInputs(dst []byte, m map[string]int64) []byte {
	dst = append(dst, '{')
	switch len(m) {
	case 0:
	case 1:
		for k, v := range m {
			dst = appendString(dst, k)
			dst = append(dst, ':')
			dst = strconv.AppendInt(dst, v, 10)
		}
	default:
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendString(dst, k)
			dst = append(dst, ':')
			dst = strconv.AppendInt(dst, m[k], 10)
		}
	}
	return append(dst, '}')
}

// AppendRunRequest appends v's compact JSON encoding to dst, byte-
// identical to json.Marshal(v).
func AppendRunRequest(dst []byte, v *wire.RunRequest) ([]byte, error) {
	dst = append(dst, '{')
	comma := false
	if v.SchemaVersion != 0 {
		dst = append(dst, `"schema_version":`...)
		dst = strconv.AppendInt(dst, int64(v.SchemaVersion), 10)
		comma = true
	}
	if v.Tenant != "" {
		if comma {
			dst = append(dst, ',')
		}
		dst = append(dst, `"tenant":`...)
		dst = appendString(dst, v.Tenant)
		comma = true
	}
	if len(v.Inputs) != 0 {
		if comma {
			dst = append(dst, ',')
		}
		dst = append(dst, `"inputs":`...)
		dst = appendInputs(dst, v.Inputs)
		comma = true
	}
	if v.Trace {
		if comma {
			dst = append(dst, ',')
		}
		dst = append(dst, `"trace":true`...)
		comma = true
	}
	if v.Mitigations {
		if comma {
			dst = append(dst, ',')
		}
		dst = append(dst, `"mitigations":true`...)
	}
	return append(dst, '}'), nil
}

// AppendRunResponse appends v's compact JSON encoding to dst.
func AppendRunResponse(dst []byte, v *wire.RunResponse) ([]byte, error) {
	dst = append(dst, `{"schema_version":`...)
	dst = strconv.AppendInt(dst, int64(v.SchemaVersion), 10)
	dst = append(dst, `,"index":`...)
	dst = strconv.AppendInt(dst, int64(v.Index), 10)
	dst = append(dst, `,"shard":`...)
	dst = strconv.AppendInt(dst, int64(v.Shard), 10)
	dst = append(dst, `,"shard_index":`...)
	dst = strconv.AppendInt(dst, int64(v.ShardIndex), 10)
	dst = append(dst, `,"time":`...)
	dst = strconv.AppendUint(dst, v.Time, 10)
	dst = append(dst, `,"mispredictions":`...)
	dst = strconv.AppendInt(dst, int64(v.Mispredictions), 10)
	if v.Tenant != "" {
		dst = append(dst, `,"tenant":`...)
		dst = appendString(dst, v.Tenant)
	}
	if v.Epoch != 0 {
		dst = append(dst, `,"epoch":`...)
		dst = strconv.AppendInt(dst, int64(v.Epoch), 10)
	}
	if v.LeakageBits != 0 {
		dst = append(dst, `,"leakage_bits":`...)
		var ok bool
		if dst, ok = appendFloat(dst, v.LeakageBits); !ok {
			return dst, &wire.Error{Code: wire.CodeInternal, Message: "fastjson: non-finite leakage_bits"}
		}
	}
	if len(v.Trace) != 0 {
		dst = append(dst, `,"trace":[`...)
		for i := range v.Trace {
			if i > 0 {
				dst = append(dst, ',')
			}
			e := &v.Trace[i]
			dst = append(dst, `{"var":`...)
			dst = appendString(dst, e.Var)
			dst = append(dst, `,"value":`...)
			dst = strconv.AppendInt(dst, e.Value, 10)
			dst = append(dst, `,"time":`...)
			dst = strconv.AppendUint(dst, e.Time, 10)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	if len(v.Mitigations) != 0 {
		dst = append(dst, `,"mitigations":[`...)
		for i := range v.Mitigations {
			if i > 0 {
				dst = append(dst, ',')
			}
			m := &v.Mitigations[i]
			dst = append(dst, `{"id":`...)
			dst = strconv.AppendInt(dst, int64(m.ID), 10)
			dst = append(dst, `,"duration":`...)
			dst = strconv.AppendUint(dst, m.Duration, 10)
			dst = append(dst, `,"elapsed":`...)
			dst = strconv.AppendUint(dst, m.Elapsed, 10)
			dst = append(dst, `,"start":`...)
			dst = strconv.AppendUint(dst, m.Start, 10)
			if m.Mispredicted {
				dst = append(dst, `,"mispredicted":true`...)
			}
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	return append(dst, '}'), nil
}

// AppendError appends the bare wire error object (no envelope).
func AppendError(dst []byte, v *wire.Error) []byte {
	dst = append(dst, `{"code":`...)
	dst = appendString(dst, v.Code)
	dst = append(dst, `,"message":`...)
	dst = appendString(dst, v.Message)
	if v.RetryAfterMS != 0 {
		dst = append(dst, `,"retry_after_ms":`...)
		dst = strconv.AppendInt(dst, v.RetryAfterMS, 10)
	}
	return append(dst, '}')
}

// AppendErrorEnvelope appends the top-level error envelope
// {"error":{...}}, the body of every non-2xx response.
func AppendErrorEnvelope(dst []byte, v *wire.Error) ([]byte, error) {
	dst = append(dst, `{"error":`...)
	dst = AppendError(dst, v)
	return append(dst, '}'), nil
}

// AppendBatchRequest appends v's compact JSON encoding to dst.
func AppendBatchRequest(dst []byte, v *wire.BatchRequest) ([]byte, error) {
	dst = append(dst, '{')
	if v.SchemaVersion != 0 {
		dst = append(dst, `"schema_version":`...)
		dst = strconv.AppendInt(dst, int64(v.SchemaVersion), 10)
		dst = append(dst, ',')
	}
	dst = append(dst, `"requests":`...)
	if v.Requests == nil {
		dst = append(dst, `null`...)
	} else {
		dst = append(dst, '[')
		for i := range v.Requests {
			if i > 0 {
				dst = append(dst, ',')
			}
			var err error
			if dst, err = AppendRunRequest(dst, &v.Requests[i]); err != nil {
				return dst, err
			}
		}
		dst = append(dst, ']')
	}
	return append(dst, '}'), nil
}

// AppendBatchResult appends one batch item outcome; this is also the
// line format of the /v1/stream NDJSON response (without the newline).
func AppendBatchResult(dst []byte, v *wire.BatchResult) ([]byte, error) {
	dst = append(dst, '{')
	comma := false
	if v.Response != nil {
		dst = append(dst, `"response":`...)
		var err error
		if dst, err = AppendRunResponse(dst, v.Response); err != nil {
			return dst, err
		}
		comma = true
	}
	if v.Error != nil {
		if comma {
			dst = append(dst, ',')
		}
		dst = append(dst, `"error":`...)
		dst = AppendError(dst, v.Error)
	}
	return append(dst, '}'), nil
}

// AppendBatchResponse appends v's compact JSON encoding to dst.
func AppendBatchResponse(dst []byte, v *wire.BatchResponse) ([]byte, error) {
	dst = append(dst, `{"schema_version":`...)
	dst = strconv.AppendInt(dst, int64(v.SchemaVersion), 10)
	dst = append(dst, `,"results":`...)
	if v.Results == nil {
		dst = append(dst, `null`...)
	} else {
		dst = append(dst, '[')
		for i := range v.Results {
			if i > 0 {
				dst = append(dst, ',')
			}
			var err error
			if dst, err = AppendBatchResult(dst, &v.Results[i]); err != nil {
				return dst, err
			}
		}
		dst = append(dst, ']')
	}
	return append(dst, '}'), nil
}

package fastjson

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/transport/wire"
)

// FuzzWireCodecIdentity is the differential oracle for the fast codec:
// for every input, in both lenient and strict modes, every hot wire
// type must make the same accept/reject decision as encoding/json,
// produce a deeply equal value on accept, and re-encode that value
// byte-identically to json.Marshal. The seed corpus under testdata/fuzz
// pins the golden fixtures and the adversarial documents; make
// fuzz-smoke runs a short randomized session on top.
func FuzzWireCodecIdentity(f *testing.F) {
	for _, doc := range decodeDocs {
		f.Add([]byte(doc), false)
		f.Add([]byte(doc), true)
	}
	f.Fuzz(func(t *testing.T, data []byte, strict bool) {
		diffOne(t, data, strict, &wire.RunRequest{}, &wire.RunRequest{}, DecodeRunRequest,
			func(v *wire.RunRequest) ([]byte, error) { return AppendRunRequest(nil, v) })
		diffOne(t, data, strict, &wire.RunResponse{}, &wire.RunResponse{}, DecodeRunResponse,
			func(v *wire.RunResponse) ([]byte, error) { return AppendRunResponse(nil, v) })
		diffOne(t, data, strict, &wire.BatchRequest{}, &wire.BatchRequest{}, DecodeBatchRequest,
			func(v *wire.BatchRequest) ([]byte, error) { return AppendBatchRequest(nil, v) })
		diffOne(t, data, strict, &wire.BatchResponse{}, &wire.BatchResponse{}, DecodeBatchResponse,
			func(v *wire.BatchResponse) ([]byte, error) { return AppendBatchResponse(nil, v) })
		diffOne(t, data, strict, &wire.BatchResult{}, &wire.BatchResult{}, DecodeBatchResult,
			func(v *wire.BatchResult) ([]byte, error) { return AppendBatchResult(nil, v) })
		diffOne(t, data, strict, &wire.Error{}, &wire.Error{}, DecodeError,
			func(v *wire.Error) ([]byte, error) { return AppendError(nil, v), nil })
	})
}

// diffOne runs one type's decode differential and, when both codecs
// accept, the encode differential on the decoded value.
func diffOne[T any](t *testing.T, data []byte, strict bool, std, fast *T,
	dec func([]byte, *T, bool) error, enc func(*T) ([]byte, error)) {
	t.Helper()
	var stdErr error
	if strict {
		stdErr = stdStrictUnmarshal(data, std)
	} else {
		stdErr = json.Unmarshal(data, std)
	}
	fastErr := dec(data, fast, strict)
	if (stdErr == nil) != (fastErr == nil) {
		t.Fatalf("%T strict=%v accept mismatch on %q: std=%v fast=%v", std, strict, data, stdErr, fastErr)
	}
	if stdErr != nil {
		return
	}
	if !reflect.DeepEqual(std, fast) {
		t.Fatalf("%T strict=%v value mismatch on %q:\n std=%+v\nfast=%+v", std, strict, data, std, fast)
	}
	wantEnc, stdEncErr := json.Marshal(fast)
	gotEnc, fastEncErr := enc(fast)
	if (stdEncErr == nil) != (fastEncErr == nil) {
		t.Fatalf("%T encode accept mismatch: std=%v fast=%v", std, stdEncErr, fastEncErr)
	}
	if stdEncErr == nil && !bytes.Equal(wantEnc, gotEnc) {
		t.Fatalf("%T encode mismatch:\n std=%s\nfast=%s", std, wantEnc, gotEnc)
	}
}

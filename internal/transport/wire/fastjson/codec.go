package fastjson

import "repro/internal/transport/wire"

// Codec adapts the package's free functions to the wire.Codec seam.
// It is stateless; the zero value is ready to use and is what the
// transport and client default to.
type Codec struct{}

var _ wire.Codec = Codec{}

// Name implements wire.Codec.
func (Codec) Name() string { return "fast" }

// AppendRunRequest implements wire.Codec.
func (Codec) AppendRunRequest(dst []byte, v *wire.RunRequest) ([]byte, error) {
	return AppendRunRequest(dst, v)
}

// AppendRunResponse implements wire.Codec.
func (Codec) AppendRunResponse(dst []byte, v *wire.RunResponse) ([]byte, error) {
	return AppendRunResponse(dst, v)
}

// AppendBatchRequest implements wire.Codec.
func (Codec) AppendBatchRequest(dst []byte, v *wire.BatchRequest) ([]byte, error) {
	return AppendBatchRequest(dst, v)
}

// AppendBatchResponse implements wire.Codec.
func (Codec) AppendBatchResponse(dst []byte, v *wire.BatchResponse) ([]byte, error) {
	return AppendBatchResponse(dst, v)
}

// AppendBatchResult implements wire.Codec.
func (Codec) AppendBatchResult(dst []byte, v *wire.BatchResult) ([]byte, error) {
	return AppendBatchResult(dst, v)
}

// AppendErrorEnvelope implements wire.Codec.
func (Codec) AppendErrorEnvelope(dst []byte, v *wire.Error) ([]byte, error) {
	return AppendErrorEnvelope(dst, v)
}

// DecodeRunRequest implements wire.Codec.
func (Codec) DecodeRunRequest(data []byte, v *wire.RunRequest, strict bool) error {
	return DecodeRunRequest(data, v, strict)
}

// DecodeRunResponse implements wire.Codec.
func (Codec) DecodeRunResponse(data []byte, v *wire.RunResponse, strict bool) error {
	return DecodeRunResponse(data, v, strict)
}

// DecodeBatchRequest implements wire.Codec.
func (Codec) DecodeBatchRequest(data []byte, v *wire.BatchRequest, strict bool) error {
	return DecodeBatchRequest(data, v, strict)
}

// DecodeBatchResponse implements wire.Codec.
func (Codec) DecodeBatchResponse(data []byte, v *wire.BatchResponse, strict bool) error {
	return DecodeBatchResponse(data, v, strict)
}

// DecodeBatchResult implements wire.Codec.
func (Codec) DecodeBatchResult(data []byte, v *wire.BatchResult, strict bool) error {
	return DecodeBatchResult(data, v, strict)
}

// DecodeErrorEnvelope implements wire.Codec.
func (Codec) DecodeErrorEnvelope(data []byte, v *wire.Error, strict bool) error {
	return DecodeErrorEnvelope(data, v, strict)
}

package fastjson

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"unicode/utf16"
	"unicode/utf8"

	"repro/internal/transport/wire"
)

// decoder is the reusable parse state: the input, a cursor, an
// unquoting scratch, and a string-interning cache so the steady state
// (same field keys, same tenants request after request) allocates
// nothing. Obtain one from the pool via get/put.
type decoder struct {
	data   []byte
	off    int
	strict bool // unknown object keys are errors (DisallowUnknownFields)
	// scratch backs unquoted strings that contain escapes.
	scratch []byte
	// interned maps recently seen string bytes to a single shared
	// string, so map keys and tenant names stop allocating after the
	// first occurrence. Bounded: reset wholesale when oversized.
	interned map[string]string
	// depth tracks open containers, bounded at maxDepth to match
	// encoding/json's scanner limit (and to keep skipValue's recursion
	// on deeply nested unknown values from exhausting the stack).
	depth int
}

// maxDepth mirrors encoding/json's maxNestingDepth: documents nested
// deeper are rejected, so the differential fuzz target sees identical
// accept/reject decisions on pathological inputs.
const maxDepth = 10000

func (d *decoder) push() error {
	d.depth++
	if d.depth > maxDepth {
		return d.syntax("exceeded max depth")
	}
	return nil
}

var decPool = sync.Pool{New: func() any {
	return &decoder{interned: make(map[string]string, 16)}
}}

func getDecoder(data []byte, strict bool) *decoder {
	d := decPool.Get().(*decoder)
	d.data, d.off, d.strict, d.depth = data, 0, strict, 0
	return d
}

func putDecoder(d *decoder) {
	if len(d.interned) > 1024 {
		d.interned = make(map[string]string, 16)
	}
	d.data = nil
	decPool.Put(d)
}

// SyntaxError reports a malformed document or a type mismatch; the
// offset is the byte position the parse failed at.
type SyntaxError struct {
	Offset int
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("fastjson: %s (at offset %d)", e.Msg, e.Offset)
}

// UnknownFieldError is returned in strict mode for an object key no
// struct field matches, mirroring json.Decoder.DisallowUnknownFields.
type UnknownFieldError struct{ Field string }

func (e *UnknownFieldError) Error() string {
	return fmt.Sprintf("fastjson: unknown field %q", e.Field)
}

func (d *decoder) syntax(msg string) error { return &SyntaxError{Offset: d.off, Msg: msg} }

// skipWS advances past JSON whitespace.
func (d *decoder) skipWS() {
	for d.off < len(d.data) {
		switch d.data[d.off] {
		case ' ', '\t', '\n', '\r':
			d.off++
		default:
			return
		}
	}
}

// peek returns the next non-whitespace byte without consuming it.
func (d *decoder) peek() (byte, error) {
	d.skipWS()
	if d.off >= len(d.data) {
		return 0, d.syntax("unexpected end of JSON input")
	}
	return d.data[d.off], nil
}

// expect consumes the next non-whitespace byte, requiring it to be c.
func (d *decoder) expect(c byte) error {
	b, err := d.peek()
	if err != nil {
		return err
	}
	if b != c {
		return d.syntax(fmt.Sprintf("expected %q, found %q", c, b))
	}
	d.off++
	return nil
}

// literal consumes a named literal (true/false/null) already
// identified by its first byte.
func (d *decoder) literal(lit string) error {
	if len(d.data)-d.off < len(lit) || string(d.data[d.off:d.off+len(lit)]) != lit {
		return d.syntax("invalid literal")
	}
	d.off += len(lit)
	return nil
}

// trailing verifies only whitespace remains, matching json.Unmarshal's
// rejection of trailing data.
func (d *decoder) trailing() error {
	d.skipWS()
	if d.off != len(d.data) {
		return d.syntax("invalid character after top-level value")
	}
	return nil
}

// ---------------------------------------------------------------------------
// Strings

// parseStringBytes consumes a string literal and returns its unquoted
// bytes. The fast path (no escapes, ASCII) aliases the input; the slow
// path decodes into d.scratch. The returned slice is valid until the
// next parseStringBytes call.
func (d *decoder) parseStringBytes() ([]byte, error) {
	if err := d.expect('"'); err != nil {
		return nil, err
	}
	start := d.off
	for i := d.off; i < len(d.data); i++ {
		c := d.data[i]
		if c == '"' {
			d.off = i + 1
			return d.data[start:i], nil
		}
		if c == '\\' || c >= utf8.RuneSelf {
			return d.parseStringSlow(start, i)
		}
		if c < 0x20 {
			d.off = i
			return nil, d.syntax("invalid control character in string literal")
		}
	}
	d.off = len(d.data)
	return nil, d.syntax("unexpected end of string literal")
}

// parseStringSlow handles escapes and non-ASCII: it decodes the rest
// of the literal into d.scratch, applying the same transformations as
// encoding/json's unquote (escape decoding, surrogate pairing, U+FFFD
// substitution for invalid UTF-8 and lone surrogates).
func (d *decoder) parseStringSlow(start, i int) ([]byte, error) {
	buf := append(d.scratch[:0], d.data[start:i]...)
	data := d.data
	for i < len(data) {
		switch c := data[i]; {
		case c == '"':
			d.off = i + 1
			d.scratch = buf
			return buf, nil
		case c < 0x20:
			d.off = i
			return nil, d.syntax("invalid control character in string literal")
		case c == '\\':
			i++
			if i >= len(data) {
				d.off = i
				return nil, d.syntax("unexpected end of string literal")
			}
			switch data[i] {
			case '"':
				buf = append(buf, '"')
			case '\\':
				buf = append(buf, '\\')
			case '/':
				buf = append(buf, '/')
			case 'b':
				buf = append(buf, '\b')
			case 'f':
				buf = append(buf, '\f')
			case 'n':
				buf = append(buf, '\n')
			case 'r':
				buf = append(buf, '\r')
			case 't':
				buf = append(buf, '\t')
			case 'u':
				r, err := d.hex4(data, i+1)
				if err != nil {
					return nil, err
				}
				i += 4
				if utf16.IsSurrogate(r) {
					// Try to pair with a following \uXXXX; unpaired
					// surrogates become U+FFFD, as in encoding/json.
					if i+6 < len(data) && data[i+1] == '\\' && data[i+2] == 'u' {
						r2, err := d.hex4(data, i+3)
						if err == nil {
							if dec := utf16.DecodeRune(r, r2); dec != unicode_replacement {
								buf = utf8.AppendRune(buf, dec)
								i += 6
								break
							}
						}
					}
					buf = utf8.AppendRune(buf, unicode_replacement)
					break
				}
				buf = utf8.AppendRune(buf, r)
			default:
				d.off = i
				return nil, d.syntax("invalid escape in string literal")
			}
			i++
		case c < utf8.RuneSelf:
			buf = append(buf, c)
			i++
		default:
			r, size := utf8.DecodeRune(data[i:])
			if r == utf8.RuneError && size == 1 {
				buf = utf8.AppendRune(buf, unicode_replacement)
			} else {
				buf = append(buf, data[i:i+size]...)
			}
			i += size
		}
	}
	d.off = len(data)
	return nil, d.syntax("unexpected end of string literal")
}

const unicode_replacement = '�'

// hex4 parses the four hex digits of a \uXXXX escape starting at p.
func (d *decoder) hex4(data []byte, p int) (rune, error) {
	if p+4 > len(data) {
		d.off = len(data)
		return 0, d.syntax("invalid \\u escape")
	}
	var r rune
	for _, c := range data[p : p+4] {
		switch {
		case c >= '0' && c <= '9':
			c -= '0'
		case c >= 'a' && c <= 'f':
			c -= 'a' - 10
		case c >= 'A' && c <= 'F':
			c -= 'A' - 10
		default:
			d.off = p
			return 0, d.syntax("invalid \\u escape")
		}
		r = r*16 + rune(c)
	}
	return r, nil
}

// intern returns a string for b, reusing a previously allocated copy
// when the same bytes were seen before.
func (d *decoder) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := d.interned[string(b)]; ok { // no alloc: map lookup on []byte conversion
		return s
	}
	s := string(b)
	d.interned[s] = s
	return s
}

// ---------------------------------------------------------------------------
// Numbers

// scanNumber consumes a number literal per the JSON grammar and
// reports whether it carries a fraction or exponent part.
func (d *decoder) scanNumber() (lit []byte, isInt bool, err error) {
	d.skipWS()
	start := d.off
	i := d.off
	data := d.data
	isInt = true
	if i < len(data) && data[i] == '-' {
		i++
	}
	switch {
	case i < len(data) && data[i] == '0':
		i++
	case i < len(data) && data[i] >= '1' && data[i] <= '9':
		for i < len(data) && data[i] >= '0' && data[i] <= '9' {
			i++
		}
	default:
		d.off = i
		return nil, false, d.syntax("invalid number literal")
	}
	if i < len(data) && data[i] == '.' {
		isInt = false
		i++
		if i >= len(data) || data[i] < '0' || data[i] > '9' {
			d.off = i
			return nil, false, d.syntax("invalid number literal")
		}
		for i < len(data) && data[i] >= '0' && data[i] <= '9' {
			i++
		}
	}
	if i < len(data) && (data[i] == 'e' || data[i] == 'E') {
		isInt = false
		i++
		if i < len(data) && (data[i] == '+' || data[i] == '-') {
			i++
		}
		if i >= len(data) || data[i] < '0' || data[i] > '9' {
			d.off = i
			return nil, false, d.syntax("invalid number literal")
		}
		for i < len(data) && data[i] >= '0' && data[i] <= '9' {
			i++
		}
	}
	d.off = i
	return data[start:i], isInt, nil
}

// parseInt64 parses a number into an int64 with json semantics: a
// fraction or exponent (or overflow) is an error, as in json.Unmarshal
// into an integer field.
func (d *decoder) parseInt64() (int64, error) {
	lit, isInt, err := d.scanNumber()
	if err != nil {
		return 0, err
	}
	if !isInt {
		return 0, d.syntax("cannot unmarshal non-integer number into integer field")
	}
	neg := false
	i := 0
	if lit[0] == '-' {
		neg = true
		i = 1
	}
	var u uint64
	for ; i < len(lit); i++ {
		// Guard the multiply before it can wrap uint64: past this bound
		// u*10+digit exceeds 1<<63 regardless of the digit.
		if u > (1<<63)/10 {
			return 0, d.syntax("integer overflow")
		}
		u = u*10 + uint64(lit[i]-'0')
		if u > 1<<63 {
			return 0, d.syntax("integer overflow")
		}
	}
	if neg {
		return -int64(u), nil
	}
	if u == 1<<63 {
		return 0, d.syntax("integer overflow")
	}
	return int64(u), nil
}

// parseUint64 parses a number into a uint64 (negatives are errors).
func (d *decoder) parseUint64() (uint64, error) {
	lit, isInt, err := d.scanNumber()
	if err != nil {
		return 0, err
	}
	if !isInt || lit[0] == '-' {
		return 0, d.syntax("cannot unmarshal number into unsigned integer field")
	}
	var u uint64
	for _, c := range lit {
		hi := u
		u = u*10 + uint64(c-'0')
		if u/10 != hi {
			return 0, d.syntax("unsigned integer overflow")
		}
	}
	return u, nil
}

// pow10tab holds the powers of ten exactly representable in float64,
// backing the fast float path.
var pow10tab = [...]float64{
	1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// fastFloat converts a grammar-validated number literal via the
// Clinger fast path: when the mantissa fits 53 bits exactly and the
// decimal exponent is within ±22, a single multiply or divide by an
// exact power of ten is correctly rounded — identical to ParseFloat —
// without allocating. Out-of-range shapes report ok=false.
func fastFloat(lit []byte) (f float64, ok bool) {
	i := 0
	neg := false
	if lit[i] == '-' {
		neg = true
		i++
	}
	var mant uint64
	nd, exp := 0, 0
	for ; i < len(lit) && lit[i] >= '0' && lit[i] <= '9'; i++ {
		if nd >= 19 {
			return 0, false
		}
		mant = mant*10 + uint64(lit[i]-'0')
		nd++
	}
	if i < len(lit) && lit[i] == '.' {
		i++
		for ; i < len(lit) && lit[i] >= '0' && lit[i] <= '9'; i++ {
			if nd >= 19 {
				return 0, false
			}
			mant = mant*10 + uint64(lit[i]-'0')
			nd++
			exp--
		}
	}
	if i < len(lit) && (lit[i] == 'e' || lit[i] == 'E') {
		i++
		esign := 1
		if lit[i] == '+' {
			i++
		} else if lit[i] == '-' {
			esign = -1
			i++
		}
		e := 0
		for ; i < len(lit); i++ {
			if e > 10000 {
				return 0, false
			}
			e = e*10 + int(lit[i]-'0')
		}
		exp += esign * e
	}
	if mant >= 1<<53 || exp < -22 || exp > 22 {
		return 0, false
	}
	f = float64(mant)
	if exp > 0 {
		f *= pow10tab[exp]
	} else if exp < 0 {
		f /= pow10tab[-exp]
	}
	if neg {
		f = -f
	}
	return f, true
}

// parseFloat64 parses any JSON number into a float64 with ParseFloat
// semantics; the common short-decimal shapes take the allocation-free
// fast path.
func (d *decoder) parseFloat64() (float64, error) {
	lit, _, err := d.scanNumber()
	if err != nil {
		return 0, err
	}
	if f, ok := fastFloat(lit); ok {
		return f, nil
	}
	f, perr := strconv.ParseFloat(string(lit), 64)
	if perr != nil {
		return 0, d.syntax("number out of range")
	}
	return f, nil
}

// parseInt parses into a plain int.
func (d *decoder) parseInt() (int, error) {
	v, err := d.parseInt64()
	return int(v), err
}

// ---------------------------------------------------------------------------
// Generic values

// skipValue consumes (and grammar-validates) one JSON value of any
// shape — the lenient-mode treatment of unknown fields.
func (d *decoder) skipValue() error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	switch c {
	case '{':
		d.off++
		if err := d.push(); err != nil {
			return err
		}
		first := true
		for {
			b, err := d.peek()
			if err != nil {
				return err
			}
			if b == '}' {
				d.off++
				d.depth--
				return nil
			}
			if !first {
				if err := d.expect(','); err != nil {
					return err
				}
			}
			first = false
			if _, err := d.parseStringBytes(); err != nil {
				return err
			}
			if err := d.expect(':'); err != nil {
				return err
			}
			if err := d.skipValue(); err != nil {
				return err
			}
		}
	case '[':
		d.off++
		if err := d.push(); err != nil {
			return err
		}
		first := true
		for {
			b, err := d.peek()
			if err != nil {
				return err
			}
			if b == ']' {
				d.off++
				d.depth--
				return nil
			}
			if !first {
				if err := d.expect(','); err != nil {
					return err
				}
			}
			first = false
			if err := d.skipValue(); err != nil {
				return err
			}
		}
	case '"':
		_, err := d.parseStringBytes()
		return err
	case 't':
		d.off++
		return d.literal("rue")
	case 'f':
		d.off++
		return d.literal("alse")
	case 'n':
		d.off++
		return d.literal("ull")
	default:
		_, _, err := d.scanNumber()
		return err
	}
}

// tryNull consumes a null literal if one is next, reporting whether it
// did. Callers use it to implement json's null semantics (no-op for
// scalars, nil assignment for maps/slices/pointers).
func (d *decoder) tryNull() (bool, error) {
	c, err := d.peek()
	if err != nil {
		return false, err
	}
	if c != 'n' {
		return false, nil
	}
	d.off++
	if err := d.literal("ull"); err != nil {
		return false, err
	}
	return true, nil
}

// Typed field parsers: each implements "null leaves the destination
// unchanged" for scalars, as json.Unmarshal does.

func (d *decoder) fieldInt(dst *int) error {
	if null, err := d.tryNull(); null || err != nil {
		return err
	}
	v, err := d.parseInt()
	if err != nil {
		return err
	}
	*dst = v
	return nil
}

func (d *decoder) fieldInt64(dst *int64) error {
	if null, err := d.tryNull(); null || err != nil {
		return err
	}
	v, err := d.parseInt64()
	if err != nil {
		return err
	}
	*dst = v
	return nil
}

func (d *decoder) fieldUint64(dst *uint64) error {
	if null, err := d.tryNull(); null || err != nil {
		return err
	}
	v, err := d.parseUint64()
	if err != nil {
		return err
	}
	*dst = v
	return nil
}

func (d *decoder) fieldFloat64(dst *float64) error {
	if null, err := d.tryNull(); null || err != nil {
		return err
	}
	v, err := d.parseFloat64()
	if err != nil {
		return err
	}
	*dst = v
	return nil
}

func (d *decoder) fieldBool(dst *bool) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	switch c {
	case 't':
		d.off++
		if err := d.literal("rue"); err != nil {
			return err
		}
		*dst = true
	case 'f':
		d.off++
		if err := d.literal("alse"); err != nil {
			return err
		}
		*dst = false
	case 'n':
		d.off++
		return d.literal("ull")
	default:
		return d.syntax("cannot unmarshal value into bool field")
	}
	return nil
}

func (d *decoder) fieldString(dst *string) error {
	if null, err := d.tryNull(); null || err != nil {
		return err
	}
	b, err := d.parseStringBytes()
	if err != nil {
		return err
	}
	*dst = d.intern(b)
	return nil
}

// fieldInputs decodes the map[string]int64 inputs field: null sets the
// map nil, an object allocates on demand and merges entries (last
// occurrence of a duplicate key wins), exactly as json.Unmarshal.
func (d *decoder) fieldInputs(dst *map[string]int64) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		d.off++
		if err := d.literal("ull"); err != nil {
			return err
		}
		*dst = nil
		return nil
	}
	if c != '{' {
		return d.syntax("cannot unmarshal value into inputs map")
	}
	d.off++
	if err := d.push(); err != nil {
		return err
	}
	if *dst == nil {
		*dst = make(map[string]int64, 4)
	}
	m := *dst
	first := true
	for {
		b, err := d.peek()
		if err != nil {
			return err
		}
		if b == '}' {
			d.off++
			d.depth--
			return nil
		}
		if !first {
			if err := d.expect(','); err != nil {
				return err
			}
		}
		first = false
		key, err := d.parseStringBytes()
		if err != nil {
			return err
		}
		name := d.intern(key)
		if err := d.expect(':'); err != nil {
			return err
		}
		var v int64
		hadNull, err := d.tryNull()
		if err != nil {
			return err
		}
		if !hadNull {
			if v, err = d.parseInt64(); err != nil {
				return err
			}
		}
		m[name] = v
	}
}

// ---------------------------------------------------------------------------
// Struct decoders

// objectShape drives one struct decode: returns false immediately when
// the value is null (leaving dst untouched, as json does for structs),
// otherwise iterates "key": value pairs calling field for each.
func (d *decoder) object(kind string, field func(key []byte) (bool, error)) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		d.off++
		return d.literal("ull")
	}
	if c != '{' {
		return d.syntax("cannot unmarshal value into " + kind)
	}
	d.off++
	if err := d.push(); err != nil {
		return err
	}
	first := true
	for {
		b, err := d.peek()
		if err != nil {
			return err
		}
		if b == '}' {
			d.off++
			d.depth--
			return nil
		}
		if !first {
			if err := d.expect(','); err != nil {
				return err
			}
			if b, err = d.peek(); err != nil {
				return err
			}
			if b == '}' {
				return d.syntax("trailing comma in object")
			}
		}
		first = false
		key, err := d.parseStringBytes()
		if err != nil {
			return err
		}
		if err := d.expect(':'); err != nil {
			return err
		}
		known, err := field(key)
		if err != nil {
			return err
		}
		if !known {
			if d.strict {
				return &UnknownFieldError{Field: string(key)}
			}
			if err := d.skipValue(); err != nil {
				return err
			}
		}
	}
}

// keyIs matches an unquoted object key against a field name with
// json's rules: exact bytes first, then Unicode case folding.
func keyIs(key []byte, name string) bool {
	if string(key) == name { // no alloc: compiler-recognized comparison
		return true
	}
	return strings.EqualFold(string(key), name)
}

func (d *decoder) runRequest(v *wire.RunRequest) error {
	return d.object("RunRequest", func(key []byte) (bool, error) {
		switch {
		case keyIs(key, "schema_version"):
			return true, d.fieldInt(&v.SchemaVersion)
		case keyIs(key, "tenant"):
			return true, d.fieldString(&v.Tenant)
		case keyIs(key, "inputs"):
			return true, d.fieldInputs(&v.Inputs)
		case keyIs(key, "trace"):
			return true, d.fieldBool(&v.Trace)
		case keyIs(key, "mitigations"):
			return true, d.fieldBool(&v.Mitigations)
		}
		return false, nil
	})
}

func (d *decoder) event(v *wire.Event) error {
	return d.object("Event", func(key []byte) (bool, error) {
		switch {
		case keyIs(key, "var"):
			return true, d.fieldString(&v.Var)
		case keyIs(key, "value"):
			return true, d.fieldInt64(&v.Value)
		case keyIs(key, "time"):
			return true, d.fieldUint64(&v.Time)
		}
		return false, nil
	})
}

func (d *decoder) mitRecord(v *wire.MitRecord) error {
	return d.object("MitRecord", func(key []byte) (bool, error) {
		switch {
		case keyIs(key, "id"):
			return true, d.fieldInt(&v.ID)
		case keyIs(key, "duration"):
			return true, d.fieldUint64(&v.Duration)
		case keyIs(key, "elapsed"):
			return true, d.fieldUint64(&v.Elapsed)
		case keyIs(key, "start"):
			return true, d.fieldUint64(&v.Start)
		case keyIs(key, "mispredicted"):
			return true, d.fieldBool(&v.Mispredicted)
		}
		return false, nil
	})
}

func (d *decoder) runResponse(v *wire.RunResponse) error {
	return d.object("RunResponse", func(key []byte) (bool, error) {
		switch {
		case keyIs(key, "schema_version"):
			return true, d.fieldInt(&v.SchemaVersion)
		case keyIs(key, "index"):
			return true, d.fieldInt(&v.Index)
		case keyIs(key, "shard"):
			return true, d.fieldInt(&v.Shard)
		case keyIs(key, "shard_index"):
			return true, d.fieldInt(&v.ShardIndex)
		case keyIs(key, "time"):
			return true, d.fieldUint64(&v.Time)
		case keyIs(key, "mispredictions"):
			return true, d.fieldInt(&v.Mispredictions)
		case keyIs(key, "tenant"):
			return true, d.fieldString(&v.Tenant)
		case keyIs(key, "epoch"):
			return true, d.fieldInt(&v.Epoch)
		case keyIs(key, "leakage_bits"):
			return true, d.fieldFloat64(&v.LeakageBits)
		case keyIs(key, "trace"):
			return true, decodeSlice(d, &v.Trace, (*decoder).event)
		case keyIs(key, "mitigations"):
			return true, decodeSlice(d, &v.Mitigations, (*decoder).mitRecord)
		}
		return false, nil
	})
}

func (d *decoder) wireError(v *wire.Error) error {
	return d.object("Error", func(key []byte) (bool, error) {
		switch {
		case keyIs(key, "code"):
			return true, d.fieldString(&v.Code)
		case keyIs(key, "message"):
			return true, d.fieldString(&v.Message)
		case keyIs(key, "retry_after_ms"):
			return true, d.fieldInt64(&v.RetryAfterMS)
		}
		return false, nil
	})
}

func (d *decoder) batchRequest(v *wire.BatchRequest) error {
	return d.object("BatchRequest", func(key []byte) (bool, error) {
		switch {
		case keyIs(key, "schema_version"):
			return true, d.fieldInt(&v.SchemaVersion)
		case keyIs(key, "requests"):
			return true, decodeSlice(d, &v.Requests, (*decoder).runRequest)
		}
		return false, nil
	})
}

func (d *decoder) batchResult(v *wire.BatchResult) error {
	return d.object("BatchResult", func(key []byte) (bool, error) {
		switch {
		case keyIs(key, "response"):
			return true, decodePtr(d, &v.Response, (*decoder).runResponse)
		case keyIs(key, "error"):
			return true, decodePtr(d, &v.Error, (*decoder).wireError)
		}
		return false, nil
	})
}

func (d *decoder) batchResponse(v *wire.BatchResponse) error {
	return d.object("BatchResponse", func(key []byte) (bool, error) {
		switch {
		case keyIs(key, "schema_version"):
			return true, d.fieldInt(&v.SchemaVersion)
		case keyIs(key, "results"):
			return true, decodeSlice(d, &v.Results, (*decoder).batchResult)
		}
		return false, nil
	})
}

// decodeSlice decodes a JSON array into *dst with json.Unmarshal's
// reuse semantics: null sets the slice nil, elements within capacity
// are decoded in place (merging into stale values exactly as the
// stdlib does), and the final length equals the array's.
func decodeSlice[T any](d *decoder, dst *[]T, elem func(*decoder, *T) error) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		d.off++
		if err := d.literal("ull"); err != nil {
			return err
		}
		*dst = nil
		return nil
	}
	if c != '[' {
		return d.syntax("cannot unmarshal value into slice field")
	}
	d.off++
	if err := d.push(); err != nil {
		return err
	}
	s := (*dst)[:0]
	first := true
	for {
		b, err := d.peek()
		if err != nil {
			return err
		}
		if b == ']' {
			d.off++
			d.depth--
			if s == nil {
				s = make([]T, 0)
			}
			*dst = s
			return nil
		}
		if !first {
			if err := d.expect(','); err != nil {
				return err
			}
		}
		first = false
		if len(s) < cap(s) {
			s = s[:len(s)+1]
		} else {
			var zero T
			s = append(s, zero)
		}
		if err := elem(d, &s[len(s)-1]); err != nil {
			*dst = s
			return err
		}
	}
}

// decodePtr decodes into a pointer field: null sets it nil, an object
// allocates the pointee on demand and merges into it otherwise.
func decodePtr[T any](d *decoder, dst **T, obj func(*decoder, *T) error) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		d.off++
		if err := d.literal("ull"); err != nil {
			return err
		}
		*dst = nil
		return nil
	}
	if *dst == nil {
		*dst = new(T)
	}
	return obj(d, *dst)
}

// ---------------------------------------------------------------------------
// Public decode API

// decodeTop runs one full document decode with trailing-data checking,
// managing the pooled decoder.
func decodeTop[T any](data []byte, v *T, strict bool, f func(*decoder, *T) error) error {
	d := getDecoder(data, strict)
	err := f(d, v)
	if err == nil {
		err = d.trailing()
	}
	putDecoder(d)
	return err
}

// DecodeRunRequest parses data into v. Strict mode rejects unknown
// fields (the server's DisallowUnknownFields semantics); either way
// trailing non-whitespace is an error. v is merged into, not reset:
// pass a zero value (or a recycled, cleared scratch) for a fresh
// decode.
func DecodeRunRequest(data []byte, v *wire.RunRequest, strict bool) error {
	return decodeTop(data, v, strict, (*decoder).runRequest)
}

// DecodeRunResponse parses data into v.
func DecodeRunResponse(data []byte, v *wire.RunResponse, strict bool) error {
	return decodeTop(data, v, strict, (*decoder).runResponse)
}

// DecodeBatchRequest parses data into v.
func DecodeBatchRequest(data []byte, v *wire.BatchRequest, strict bool) error {
	return decodeTop(data, v, strict, (*decoder).batchRequest)
}

// DecodeBatchResponse parses data into v.
func DecodeBatchResponse(data []byte, v *wire.BatchResponse, strict bool) error {
	return decodeTop(data, v, strict, (*decoder).batchResponse)
}

// DecodeBatchResult parses one batch item outcome (a /v1/stream
// response line) into v.
func DecodeBatchResult(data []byte, v *wire.BatchResult, strict bool) error {
	return decodeTop(data, v, strict, (*decoder).batchResult)
}

// DecodeError parses a bare wire error object into v.
func DecodeError(data []byte, v *wire.Error, strict bool) error {
	return decodeTop(data, v, strict, (*decoder).wireError)
}

// errorEnvelope parses the top-level {"error":{...}} failure body.
func (d *decoder) errorEnvelope(v *wire.Error) error {
	return d.object("ErrorEnvelope", func(key []byte) (bool, error) {
		if keyIs(key, "error") {
			null, err := d.tryNull()
			if null || err != nil {
				return true, err
			}
			return true, d.wireError(v)
		}
		return false, nil
	})
}

// DecodeErrorEnvelope parses a non-2xx response body {"error":{...}}
// into v; a missing or null error member leaves v untouched.
func DecodeErrorEnvelope(data []byte, v *wire.Error, strict bool) error {
	return decodeTop(data, v, strict, (*decoder).errorEnvelope)
}

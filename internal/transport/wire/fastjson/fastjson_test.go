package fastjson

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/transport/wire"
)

// stdCompact is the reference encoding: json.Marshal.
func stdCompact(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("json.Marshal: %v", err)
	}
	return b
}

// stdStrictUnmarshal is the reference strict decode: DisallowUnknownFields
// plus json.Unmarshal's trailing-data rejection (which Decoder alone
// does not provide).
func stdStrictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var trailing any
	if err := dec.Decode(&trailing); err != io.EOF {
		return &SyntaxError{Msg: "trailing data"}
	}
	return nil
}

// TestGoldenIdentity proves the fast encoder byte-identical to
// encoding/json on every frozen golden fixture of both schema
// versions, and the fast decoder value-identical to json.Unmarshal on
// the same documents.
func TestGoldenIdentity(t *testing.T) {
	for _, dir := range []string{"../../testdata/wire", "../../testdata/wire/v1"} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("ReadDir(%s): %v", dir, err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
				continue
			}
			name := strings.TrimSuffix(e.Name(), ".json")
			if name == "health" {
				continue // health has no fast codec (cold path)
			}
			path := filepath.Join(dir, e.Name())
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("ReadFile: %v", err)
			}
			t.Run(path, func(t *testing.T) {
				switch {
				case strings.HasPrefix(name, "run_request"):
					var std, fast wire.RunRequest
					checkFixture(t, raw, &std, &fast, DecodeRunRequest, func(v *wire.RunRequest) ([]byte, error) {
						return AppendRunRequest(nil, v)
					})
				case strings.HasPrefix(name, "run_response"):
					var std, fast wire.RunResponse
					checkFixture(t, raw, &std, &fast, DecodeRunResponse, func(v *wire.RunResponse) ([]byte, error) {
						return AppendRunResponse(nil, v)
					})
				case strings.HasPrefix(name, "batch_request"):
					var std, fast wire.BatchRequest
					checkFixture(t, raw, &std, &fast, DecodeBatchRequest, func(v *wire.BatchRequest) ([]byte, error) {
						return AppendBatchRequest(nil, v)
					})
				case strings.HasPrefix(name, "batch_response"):
					var std, fast wire.BatchResponse
					checkFixture(t, raw, &std, &fast, DecodeBatchResponse, func(v *wire.BatchResponse) ([]byte, error) {
						return AppendBatchResponse(nil, v)
					})
				case strings.HasPrefix(name, "error"):
					var std, fast wire.Error
					checkFixture(t, raw, &std, &fast, DecodeError, func(v *wire.Error) ([]byte, error) {
						return AppendError(nil, v), nil
					})
				default:
					t.Fatalf("unrecognized fixture %s", name)
				}
			})
		}
	}
}

func checkFixture[T any](t *testing.T, raw []byte, std, fast *T,
	dec func([]byte, *T, bool) error, enc func(*T) ([]byte, error)) {
	t.Helper()
	if err := json.Unmarshal(raw, std); err != nil {
		t.Fatalf("json.Unmarshal fixture: %v", err)
	}
	if err := dec(raw, fast, false); err != nil {
		t.Fatalf("fast decode fixture: %v", err)
	}
	if !reflect.DeepEqual(std, fast) {
		t.Fatalf("decode mismatch:\n std=%+v\nfast=%+v", std, fast)
	}
	want := stdCompact(t, std)
	got, err := enc(fast)
	if err != nil {
		t.Fatalf("fast encode: %v", err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("encode mismatch:\n std=%s\nfast=%s", want, got)
	}
}

// encodeCases are adversarial values exercising every escape class,
// float format boundary, and omitempty combination.
func encodeRunResponses() []wire.RunResponse {
	return []wire.RunResponse{
		{},
		{SchemaVersion: 2, Index: -1, Shard: 3, ShardIndex: -7, Time: math.MaxUint64, Mispredictions: 42},
		{Tenant: "a<b>&c\"d\\e\nf\rg\th\x01\x1f", LeakageBits: 0.001},
		{Tenant: "héllo\u2028w\u2029orld\ufffd", LeakageBits: 1e-7},
		{Tenant: string([]byte{0xff, 0xfe, 'a'}), LeakageBits: 1e21},
		{LeakageBits: 9.99e20},
		{LeakageBits: -1e-9},
		{LeakageBits: 12.5, Epoch: -3},
		{LeakageBits: math.SmallestNonzeroFloat64},
		{LeakageBits: math.MaxFloat64},
		{Trace: []wire.Event{}, Mitigations: []wire.MitRecord{}},
		{Trace: []wire.Event{{Var: "x", Value: -9, Time: 1}, {Var: "\u00e9", Value: math.MaxInt64, Time: 0}}},
		{Mitigations: []wire.MitRecord{{ID: 1, Duration: 2, Elapsed: 3, Start: 4, Mispredicted: true}, {}}},
	}
}

func TestEncodeStdIdentity(t *testing.T) {
	for i, v := range encodeRunResponses() {
		v := v
		got, err := AppendRunResponse(nil, &v)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		want := stdCompact(t, &v)
		if !bytes.Equal(got, want) {
			t.Errorf("case %d:\n std=%s\nfast=%s", i, want, got)
		}
	}

	reqs := []wire.RunRequest{
		{},
		{SchemaVersion: 1},
		{Tenant: "t", Inputs: map[string]int64{"z": 1, "a": -2, "m<": 3}, Trace: true, Mitigations: true},
		{Inputs: map[string]int64{}},
		{Inputs: map[string]int64{"only": math.MinInt64}},
	}
	for i, v := range reqs {
		v := v
		got, err := AppendRunRequest(nil, &v)
		if err != nil {
			t.Fatalf("req %d: %v", i, err)
		}
		if want := stdCompact(t, &v); !bytes.Equal(got, want) {
			t.Errorf("req %d:\n std=%s\nfast=%s", i, want, got)
		}
	}

	batches := []wire.BatchRequest{
		{},
		{SchemaVersion: 2, Requests: []wire.RunRequest{}},
		{Requests: []wire.RunRequest{{Tenant: "a"}, {}}},
	}
	for i, v := range batches {
		v := v
		got, err := AppendBatchRequest(nil, &v)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if want := stdCompact(t, &v); !bytes.Equal(got, want) {
			t.Errorf("batch %d:\n std=%s\nfast=%s", i, want, got)
		}
	}

	results := []wire.BatchResponse{
		{},
		{SchemaVersion: 2, Results: []wire.BatchResult{}},
		{Results: []wire.BatchResult{
			{Response: &wire.RunResponse{SchemaVersion: 2, Time: 77}},
			{Error: &wire.Error{Code: wire.CodeOverloaded, Message: "busy", RetryAfterMS: 250}},
			{},
		}},
	}
	for i, v := range results {
		v := v
		got, err := AppendBatchResponse(nil, &v)
		if err != nil {
			t.Fatalf("results %d: %v", i, err)
		}
		if want := stdCompact(t, &v); !bytes.Equal(got, want) {
			t.Errorf("results %d:\n std=%s\nfast=%s", i, want, got)
		}
	}

	env, err := AppendErrorEnvelope(nil, &wire.Error{Code: "internal", Message: "<boom>"})
	if err != nil {
		t.Fatal(err)
	}
	wantEnv := stdCompact(t, struct {
		Error *wire.Error `json:"error"`
	}{&wire.Error{Code: "internal", Message: "<boom>"}})
	if !bytes.Equal(env, wantEnv) {
		t.Errorf("envelope:\n std=%s\nfast=%s", wantEnv, env)
	}
}

// TestEncodeNonFinite confirms the encoder refuses what Marshal
// refuses.
func TestEncodeNonFinite(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		v := wire.RunResponse{LeakageBits: f}
		if _, err := AppendRunResponse(nil, &v); err == nil {
			t.Errorf("LeakageBits=%v: want error", f)
		}
		if _, err := json.Marshal(&v); err == nil {
			t.Errorf("std accepted %v", f)
		}
	}
}

// decodeDocs are adversarial documents exercising std decode
// semantics: case folding, nulls, duplicates, merge, overflow,
// trailing data, escapes, surrogates.
var decodeDocs = []string{
	`{}`,
	`null`,
	`{"schema_version":2,"tenant":"alice","inputs":{"h":42},"trace":true,"mitigations":true}`,
	`{"SCHEMA_VERSION":1,"Tenant":"x"}`,
	`{"leakage_bits":12.5,"workers":1}`,
	"{\"leakage_bit\u0073\":1}",
	"{\"leakage_bitſ\":1.5}",
	"{\"miſpredictions\":3,\"ſhard\":2}",
	"{\"worKers\":1}",
	`{"\u0074enant":"esc-key"}`,
	"{\"inputſ\":{\"a\":1}}",
	`{"tenant":null,"inputs":null,"trace":null}`,
	`{"inputs":{"a":1,"a":2,"b":null}}`,
	`{"inputs":{}}`,
	`{"trace":[],"mitigations":[]}`,
	`{"trace":[{"var":"x","value":1,"time":2},{"VAR":"y"}]}`,
	`{"trace":null}`,
	`{"time":18446744073709551615}`,
	`{"time":18446744073709551616}`,
	`{"time":-1}`,
	`{"value":9223372036854775807}`,
	`{"epoch":9223372036854775808}`,
	`{"epoch":92233720368547758080}`,
	`{"epoch":-9223372036854775808}`,
	`{"epoch":-9223372036854775809}`,
	`{"epoch":1e3}`,
	`{"epoch":1.5}`,
	`{"epoch":-0}`,
	`{"leakage_bits":1e999}`,
	`{"leakage_bits":-0.0}`,
	`{"leakage_bits":2.2250738585072011e-308}`,
	`{"leakage_bits":0.30000000000000004}`,
	`{"tenant":"\u0041\u00e9\ud83d\ude00"}`,
	`{"tenant":"\ud800"}`,
	`{"tenant":"\ud800\udc00"}`,
	`{"tenant":"\ud800\ud800"}`,
	`{"tenant":"a` + "\x7f" + `b"}`,
	`{"tenant":"a` + "\xff" + `b"}`,
	`{"tenant":"a\/b"}`,
	`{"tenant":"a\xb"}`,
	`{"tenant":"a` + "\x01" + `"}`,
	`{"unknown":{"deep":[1,"two",{"three":null},true,false]}}`,
	`{"unknown":01}`,
	`{"unknown":"\uzzzz"}`,
	`{"requests":[{"tenant":"a"},{}]}`,
	`{"requests":null}`,
	`{"results":[{"response":{"time":1}},{"error":{"code":"x","message":"y"}},{"response":null}]}`,
	`{} `,
	` {"trace":true}`,
	`{}x`,
	`{}{}`,
	``,
	`   `,
	`[1,2]`,
	`"str"`,
	`123`,
	`{"trace":tru}`,
	`{"trace":truex}`,
	`{"trace":"yes"}`,
	`{"tenant":42}`,
	`{"inputs":[1]}`,
	`{"trace":{"a":1}}`,
	`{"a":1,}`,
	`{"a":1 "b":2}`,
	`{"a"}`,
	`{"a":}`,
	`{1:2}`,
	`{"inputs":{"a":1},"inputs":{"b":2}}`,
	`{"inputs":{"a":1},"inputs":null}`,
	`{"tenant":"a","tenant":"b"}`,
}

// refDecode decodes with encoding/json under json.Unmarshal semantics
// (lenient) or the strict reference.
func refDecode(data []byte, v any, strict bool) error {
	if strict {
		return stdStrictUnmarshal(data, v)
	}
	return json.Unmarshal(data, v)
}

func TestDecodeStdSemantics(t *testing.T) {
	for _, strict := range []bool{false, true} {
		for i, doc := range decodeDocs {
			var stdReq, fastReq wire.RunRequest
			stdErr := refDecode([]byte(doc), &stdReq, strict)
			fastErr := DecodeRunRequest([]byte(doc), &fastReq, strict)
			if (stdErr == nil) != (fastErr == nil) {
				t.Errorf("RunRequest strict=%v doc %d %q: std err=%v fast err=%v", strict, i, doc, stdErr, fastErr)
				continue
			}
			if stdErr == nil && !reflect.DeepEqual(stdReq, fastReq) {
				t.Errorf("RunRequest strict=%v doc %d %q:\n std=%+v\nfast=%+v", strict, i, doc, stdReq, fastReq)
			}

			var stdResp, fastResp wire.RunResponse
			stdErr = refDecode([]byte(doc), &stdResp, strict)
			fastErr = DecodeRunResponse([]byte(doc), &fastResp, strict)
			if (stdErr == nil) != (fastErr == nil) {
				t.Errorf("RunResponse strict=%v doc %d %q: std err=%v fast err=%v", strict, i, doc, stdErr, fastErr)
				continue
			}
			if stdErr == nil && !reflect.DeepEqual(stdResp, fastResp) {
				t.Errorf("RunResponse strict=%v doc %d %q:\n std=%+v\nfast=%+v", strict, i, doc, stdResp, fastResp)
			}

			var stdBReq, fastBReq wire.BatchRequest
			stdErr = refDecode([]byte(doc), &stdBReq, strict)
			fastErr = DecodeBatchRequest([]byte(doc), &fastBReq, strict)
			if (stdErr == nil) != (fastErr == nil) {
				t.Errorf("BatchRequest strict=%v doc %d %q: std err=%v fast err=%v", strict, i, doc, stdErr, fastErr)
				continue
			}
			if stdErr == nil && !reflect.DeepEqual(stdBReq, fastBReq) {
				t.Errorf("BatchRequest strict=%v doc %d %q:\n std=%+v\nfast=%+v", strict, i, doc, stdBReq, fastBReq)
			}

			var stdBResp, fastBResp wire.BatchResponse
			stdErr = refDecode([]byte(doc), &stdBResp, strict)
			fastErr = DecodeBatchResponse([]byte(doc), &fastBResp, strict)
			if (stdErr == nil) != (fastErr == nil) {
				t.Errorf("BatchResponse strict=%v doc %d %q: std err=%v fast err=%v", strict, i, doc, stdErr, fastErr)
				continue
			}
			if stdErr == nil && !reflect.DeepEqual(stdBResp, fastBResp) {
				t.Errorf("BatchResponse strict=%v doc %d %q:\n std=%+v\nfast=%+v", strict, i, doc, stdBResp, fastBResp)
			}
		}
	}
}

// TestDecodeUnknownFieldError pins the strict-mode error message to
// contain the offending field name, which the transport layer's 400
// responses rely on.
func TestDecodeUnknownFieldError(t *testing.T) {
	var v wire.RunRequest
	err := DecodeRunRequest([]byte(`{"exfiltrate":1}`), &v, true)
	if err == nil || !strings.Contains(err.Error(), "exfiltrate") {
		t.Fatalf("want unknown-field error naming the field, got %v", err)
	}
}

// TestDecodeMerge pins json.Unmarshal's merge-into-existing semantics,
// which the pooled server scratch relies on being identical.
func TestDecodeMerge(t *testing.T) {
	mk := func() wire.RunRequest {
		return wire.RunRequest{
			SchemaVersion: 9,
			Tenant:        "keep",
			Inputs:        map[string]int64{"old": 7},
			Trace:         true,
		}
	}
	doc := []byte(`{"inputs":{"new":1},"mitigations":true}`)
	std, fast := mk(), mk()
	if err := json.Unmarshal(doc, &std); err != nil {
		t.Fatal(err)
	}
	if err := DecodeRunRequest(doc, &fast, false); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(std, fast) {
		t.Fatalf("merge mismatch:\n std=%+v\nfast=%+v", std, fast)
	}

	// Slice reuse within capacity, truncation to the array's length.
	sresp := wire.RunResponse{Trace: []wire.Event{{Var: "a", Value: 1}, {Var: "b", Value: 2}, {Var: "c", Value: 3}}}
	fresp := wire.RunResponse{Trace: []wire.Event{{Var: "a", Value: 1}, {Var: "b", Value: 2}, {Var: "c", Value: 3}}}
	doc2 := []byte(`{"trace":[{"time":9}]}`)
	if err := json.Unmarshal(doc2, &sresp); err != nil {
		t.Fatal(err)
	}
	if err := DecodeRunResponse(doc2, &fresp, false); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sresp, fresp) {
		t.Fatalf("slice merge mismatch:\n std=%+v\nfast=%+v", sresp, fresp)
	}
}

// TestDecodeMaxDepth pins the nesting limit to encoding/json's.
func TestDecodeMaxDepth(t *testing.T) {
	// 9998 unknown-value arrays inside the top-level object = 9999
	// containers: accepted. One more: rejected, by both codecs.
	for _, extra := range []int{0, 2} {
		n := 9998 + extra
		doc := `{"unknown":` + strings.Repeat("[", n) + strings.Repeat("]", n) + `}`
		var stdV, fastV wire.RunRequest
		stdErr := json.Unmarshal([]byte(doc), &stdV)
		fastErr := DecodeRunRequest([]byte(doc), &fastV, false)
		if (stdErr == nil) != (fastErr == nil) {
			t.Errorf("depth %d: std err=%v fast err=%v", n+1, stdErr, fastErr)
		}
	}
}

// roundTrip re-encodes a decoded value and confirms identity with the
// std encoder — decode(enc(v)) composed both ways.
func TestRoundTrip(t *testing.T) {
	for i, v := range encodeRunResponses() {
		v := v
		b, err := AppendRunResponse(nil, &v)
		if err != nil {
			continue // non-finite cases
		}
		var back wire.RunResponse
		if err := DecodeRunResponse(b, &back, true); err != nil {
			t.Fatalf("case %d: decode(encode): %v", i, err)
		}
		var stdBack wire.RunResponse
		if err := json.Unmarshal(b, &stdBack); err != nil {
			t.Fatalf("case %d: std decode: %v", i, err)
		}
		if !reflect.DeepEqual(back, stdBack) {
			t.Fatalf("case %d:\nfast=%+v\n std=%+v", i, back, stdBack)
		}
	}
}

// TestAllocsEncode pins the encode hot path at zero steady-state
// allocations given a pre-sized buffer.
func TestAllocsEncode(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("alloc counting")
	}
	resp := wire.RunResponse{
		SchemaVersion: 2, Index: 12345, Shard: 3, ShardIndex: 99, Time: 987654321,
		Mispredictions: 2, Tenant: "tenant-42", Epoch: 17, LeakageBits: 12.5,
		Trace:       []wire.Event{{Var: "reply", Value: 1, Time: 64}},
		Mitigations: []wire.MitRecord{{ID: 1, Duration: 64, Elapsed: 33, Start: 0, Mispredicted: true}},
	}
	buf := make([]byte, 0, 4096)
	if n := testing.AllocsPerRun(200, func() {
		b, err := AppendRunResponse(buf[:0], &resp)
		if err != nil || len(b) == 0 {
			t.Fatal("encode failed")
		}
	}); n != 0 {
		t.Errorf("AppendRunResponse: %v allocs/op, want 0", n)
	}

	req := wire.RunRequest{SchemaVersion: 2, Tenant: "alice", Inputs: map[string]int64{"h": 42}, Trace: true}
	if n := testing.AllocsPerRun(200, func() {
		b, err := AppendRunRequest(buf[:0], &req)
		if err != nil || len(b) == 0 {
			t.Fatal("encode failed")
		}
	}); n != 0 {
		t.Errorf("AppendRunRequest (single input): %v allocs/op, want 0", n)
	}
}

// TestAllocsDecode pins the decode hot path at zero steady-state
// allocations once destinations carry capacity and the intern cache is
// warm.
func TestAllocsDecode(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("alloc counting")
	}
	reqDoc := []byte(`{"schema_version":2,"tenant":"alice","inputs":{"h":42,"k":7},"trace":true,"mitigations":true}`)
	var req wire.RunRequest
	if err := DecodeRunRequest(reqDoc, &req, true); err != nil { // warm intern cache + map
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := DecodeRunRequest(reqDoc, &req, true); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("DecodeRunRequest: %v allocs/op, want 0", n)
	}

	respDoc := []byte(`{"schema_version":2,"index":12345,"shard":3,"shard_index":99,"time":987654321,` +
		`"mispredictions":2,"tenant":"tenant-42","epoch":17,"leakage_bits":12.5,` +
		`"trace":[{"var":"reply","value":1,"time":64}],` +
		`"mitigations":[{"id":1,"duration":64,"elapsed":33,"start":0,"mispredicted":true}]}`)
	var resp wire.RunResponse
	if err := DecodeRunResponse(respDoc, &resp, true); err != nil { // warm slices
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := DecodeRunResponse(respDoc, &resp, true); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("DecodeRunResponse: %v allocs/op, want 0", n)
	}
}

package wire

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// v1Dir holds the schema-v1 fixtures exactly as PR 5 froze them. They
// are never regenerated: they are what a v1 client actually sends, so
// decoding them under the current schema is the backward-compatibility
// contract of the v2 bump.
const v1Dir = "../testdata/wire/v1"

func readV1(t *testing.T, name string) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(v1Dir, name+".json"))
	if err != nil {
		t.Fatalf("v1 fixture missing: %v", err)
	}
	return raw
}

// TestV1RequestsDecodeUnderV2 proves decode-side tolerance: every v1
// request document decodes into the current structs with identical
// semantics — the new tenant field simply stays empty (anonymous), the
// v1 meaning.
func TestV1RequestsDecodeUnderV2(t *testing.T) {
	var run RunRequest
	if err := json.Unmarshal(readV1(t, "run_request"), &run); err != nil {
		t.Fatalf("v1 run_request no longer decodes: %v", err)
	}
	if run.SchemaVersion != 1 {
		t.Errorf("v1 request must keep declaring schema 1, got %d", run.SchemaVersion)
	}
	if run.SchemaVersion < MinSchemaVersion || run.SchemaVersion > SchemaVersion {
		t.Errorf("v1 (%d) must be inside the accepted range [%d, %d]",
			run.SchemaVersion, MinSchemaVersion, SchemaVersion)
	}
	if run.Tenant != "" {
		t.Errorf("v1 request must decode as anonymous, got tenant %q", run.Tenant)
	}
	if run.Inputs["h"] != 42 || !run.Trace || !run.Mitigations {
		t.Errorf("v1 request fields changed meaning: %+v", run)
	}

	var batch BatchRequest
	if err := json.Unmarshal(readV1(t, "batch_request"), &batch); err != nil {
		t.Fatalf("v1 batch_request no longer decodes: %v", err)
	}
	if len(batch.Requests) != 2 || batch.Requests[1].Inputs["h"] != 2 {
		t.Errorf("v1 batch fields changed meaning: %+v", batch)
	}
}

// TestV1ResponsesDecodeUnderV2 covers the other direction a vendored
// v1 copy of this package cares about: v1 response bodies still parse,
// and a v2 response parsed by v1 structs (simulated by re-decoding
// with the v1 field set) loses only the additive fields.
func TestV1ResponsesDecodeUnderV2(t *testing.T) {
	var resp RunResponse
	if err := json.Unmarshal(readV1(t, "run_response"), &resp); err != nil {
		t.Fatalf("v1 run_response no longer decodes: %v", err)
	}
	if resp.Time != 4096 || resp.Mispredictions != 1 {
		t.Errorf("v1 response fields changed meaning: %+v", resp)
	}
	if resp.Tenant != "" || resp.Epoch != 0 || resp.LeakageBits != 0 {
		t.Errorf("v1 response must leave v2 fields zero: %+v", resp)
	}

	var batch BatchResponse
	if err := json.Unmarshal(readV1(t, "batch_response"), &batch); err != nil {
		t.Fatalf("v1 batch_response no longer decodes: %v", err)
	}
	if len(batch.Results) != 2 || batch.Results[1].Error.Code != CodeOverloaded {
		t.Errorf("v1 batch response changed meaning: %+v", batch)
	}

	var werr Error
	if err := json.Unmarshal(readV1(t, "error_budget"), &werr); err != nil {
		t.Fatalf("v1 error no longer decodes: %v", err)
	}
	if werr.Code != CodeBudgetExceeded {
		t.Errorf("v1 error code changed: %+v", werr)
	}

	var h Health
	if err := json.Unmarshal(readV1(t, "health"), &h); err != nil {
		t.Fatalf("v1 health no longer decodes: %v", err)
	}
	if h.Status != StatusOK || h.Workers != 4 {
		t.Errorf("v1 health changed meaning: %+v", h)
	}
}

// TestV2AdditiveOverV1 pins the additive-change claim structurally: a
// v2 document stripped of its new fields is byte-identical to the v1
// rendering of the same values.
func TestV2AdditiveOverV1(t *testing.T) {
	v2 := RunRequest{
		SchemaVersion: 1, // as a v1 client declares
		Inputs:        map[string]int64{"h": 42},
		Trace:         true,
		Mitigations:   true,
	}
	got, err := json.MarshalIndent(v2, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want := readV1(t, "run_request")
	if string(append(got, '\n')) != string(want) {
		t.Errorf("a tenant-less v2 request must serialize exactly as v1:\n got:\n%s\nwant:\n%s", got, want)
	}
}

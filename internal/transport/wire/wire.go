// Package wire defines the versioned JSON schema of the mitigation
// service's HTTP API — the one vocabulary the server (internal/transport)
// and the client SDK (internal/transport/client) share.
//
// Wire types are deliberately decoupled from the internal structs they
// describe (server.Response, events.Event, obs.Export): the transport
// layer converts at the boundary, so internal refactors never leak into
// the network contract. The JSON field names below are frozen by the
// golden fixtures in internal/transport/testdata/wire; any incompatible
// change must bump SchemaVersion.
//
// The package imports only the standard library, so external tooling
// could vendor it wholesale to talk to the service.
package wire

import "fmt"

// SchemaVersion is the current wire schema. Requests may omit the
// version (zero means "current"); responses always carry it.
//
// Version history:
//
//	v1 — initial schema (run/batch/metrics/health, error codes).
//	v2 — tenant sessions: RunRequest.Tenant, the tenant/epoch/
//	     leakage-account fields on RunResponse, and the
//	     leakage_budget_exceeded error code. Purely additive: every v1
//	     document is a valid v2 document, so the server keeps accepting
//	     requests declaring schema_version 1 (they simply cannot name a
//	     tenant, v1 had no field for one).
const SchemaVersion = 2

// MinSchemaVersion is the oldest request schema the server still
// decodes. v2 is additive over v1, so v1 requests remain valid.
const MinSchemaVersion = 1

// RunRequest is the body of POST /v1/run: scalar inputs to set in the
// program's memory before the run. Array state cannot be supplied over
// the wire in schema v1 — services pre-bake arrays (lookup tables,
// stored credentials) into the program or its setup.
type RunRequest struct {
	// SchemaVersion is the schema this request speaks; 0 means the
	// current version.
	SchemaVersion int `json:"schema_version,omitempty"`
	// Tenant, when set, runs the request inside that tenant's session:
	// persistent per-tenant mitigation state and a cumulative leakage
	// account, enforced against the server's leakage budget (schema
	// v2). Empty means anonymous — the shard-global mitigation state, as
	// in v1. The X-Timing-Tenant header is an equivalent fallback for
	// clients that cannot touch the body.
	Tenant string `json:"tenant,omitempty"`
	// Inputs maps declared scalar names to the values to assign before
	// execution. Unknown names are rejected with CodeUnknownInput —
	// never silently dropped, since a typo'd secret would otherwise run
	// the program on stale state.
	Inputs map[string]int64 `json:"inputs,omitempty"`
	// Trace requests the observable event trace in the response;
	// Mitigations likewise the mitigation records. Both default off to
	// keep responses small.
	Trace       bool `json:"trace,omitempty"`
	Mitigations bool `json:"mitigations,omitempty"`
}

// RunResponse is the body of a successful run: the server.Response
// fields that are part of the public contract.
type RunResponse struct {
	SchemaVersion int `json:"schema_version"`
	// Index is the request's global submission index; Shard the worker
	// that served it; ShardIndex its position within that shard.
	Index      int `json:"index"`
	Shard      int `json:"shard"`
	ShardIndex int `json:"shard_index"`
	// Time is the request's total processing time in simulated cycles —
	// the round-trip latency a coresident adversary could measure.
	Time uint64 `json:"time"`
	// Mispredictions counts mitigation prediction misses in this run.
	Mispredictions int `json:"mispredictions"`
	// Tenant echoes the session the request ran in (schema v2; absent
	// for anonymous requests). Epoch is the tenant's committed request
	// count after this run, and LeakageBits the tenant's cumulative §7
	// leakage bound — the budget meter a client can watch.
	Tenant      string  `json:"tenant,omitempty"`
	Epoch       int     `json:"epoch,omitempty"`
	LeakageBits float64 `json:"leakage_bits,omitempty"`
	// Trace and Mitigations are present when requested.
	Trace       []Event     `json:"trace,omitempty"`
	Mitigations []MitRecord `json:"mitigations,omitempty"`
}

// Event mirrors events.Event: variable x took value v at
// request-relative time t.
type Event struct {
	Var   string `json:"var"`
	Value int64  `json:"value"`
	Time  uint64 `json:"time"`
}

// MitRecord mirrors events.MitRecord: one completed mitigate command.
type MitRecord struct {
	ID           int    `json:"id"`
	Duration     uint64 `json:"duration"`
	Elapsed      uint64 `json:"elapsed"`
	Start        uint64 `json:"start"`
	Mispredicted bool   `json:"mispredicted,omitempty"`
}

// BatchRequest is the body of POST /v1/batch: a request sequence
// submitted as one burst (the HTTP form of Pool.HandleAll).
type BatchRequest struct {
	SchemaVersion int          `json:"schema_version,omitempty"`
	Requests      []RunRequest `json:"requests"`
}

// BatchResponse carries one result per submitted request, in
// submission order. A failed item does not fail the batch: each result
// holds either a response or an error, mirroring the pool's
// independent-requests semantics.
type BatchResponse struct {
	SchemaVersion int           `json:"schema_version"`
	Results       []BatchResult `json:"results"`
}

// BatchResult is one item outcome: exactly one of Response and Error
// is set.
type BatchResult struct {
	Response *RunResponse `json:"response,omitempty"`
	Error    *Error       `json:"error,omitempty"`
}

// Error is the wire form of every failure, top-level or per-item.
// Code is machine-readable and stable; Message is human-readable and
// free to change.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMS, when positive, tells the client how long to wait
	// before retrying (also carried as a Retry-After header on
	// top-level 503 responses).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Stable error codes. Clients dispatch on these, never on Message.
const (
	// CodeInvalidRequest: malformed JSON, wrong schema version, or a
	// structurally invalid request body.
	CodeInvalidRequest = "invalid_request"
	// CodeUnknownInput: an Inputs name that is not a declared scalar of
	// the served program.
	CodeUnknownInput = "unknown_input"
	// CodeBudgetExceeded: the run exhausted the server's step or cycle
	// budget (mirrors server.ErrBudgetExceeded).
	CodeBudgetExceeded = "budget_exceeded"
	// CodeOverloaded: load shedding rejected the request (mirrors
	// server.ErrOverloaded); retry after the advertised delay.
	CodeOverloaded = "overloaded"
	// CodeLeakageBudget: the tenant's cumulative leakage bound reached
	// its budget (schema v2; mirrors session.ErrBudgetExceeded). Mapped
	// to HTTP 429 with a Retry-After derived from the session TTL —
	// the account resets when the session expires.
	CodeLeakageBudget = "leakage_budget_exceeded"
	// CodeShuttingDown: the service is draining and no longer accepts
	// work (mirrors server.ErrPoolClosed).
	CodeShuttingDown = "shutting_down"
	// CodeDeadlineExceeded: the request timed out server-side.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeCanceled: the client went away before the run finished.
	CodeCanceled = "canceled"
	// CodeInternal: any other failure.
	CodeInternal = "internal"
)

// Health is the body of GET /v1/healthz.
type Health struct {
	SchemaVersion int `json:"schema_version"`
	// Status is "ok" while serving and "draining" once shutdown began.
	Status string `json:"status"`
	// Engine names the execution engine ("tree"/"vm"); Workers the
	// shard count.
	Engine  string `json:"engine"`
	Workers int    `json:"workers"`
}

// Health status values.
const (
	StatusOK       = "ok"
	StatusDraining = "draining"
)

package transport

import (
	"sync"

	"repro/internal/transport/wire"
)

// Pooled wire buffers. Request bodies are read into and responses
// encoded out of these, so the steady-state hot path (run, batch,
// stream) performs no per-request buffer allocation. Discipline: a
// buffer is put back only after its bytes have been handed off (the
// ResponseWriter copies on Write, and decode destinations copy or
// intern what they keep), never while still referenced — the leak
// tests in bufpool_test.go pin this.

// maxPooledBuf bounds what a put returns to the pool: one pathological
// multi-megabyte batch must not pin its buffer forever.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// getBuf returns an empty pooled byte buffer (pointer-to-slice, so
// puts do not allocate a slice header).
func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

// putBuf returns a buffer to the pool, dropping oversized ones.
func putBuf(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// maxPooledResults bounds pooled batch-result slices the same way.
const maxPooledResults = 4096

var resultsPool = sync.Pool{New: func() any {
	s := make([]wire.BatchResult, 0, 64)
	return &s
}}

// getResults returns a zeroed batch-result slice of length n backed by
// the pool.
func getResults(n int) *[]wire.BatchResult {
	sp := resultsPool.Get().(*[]wire.BatchResult)
	s := *sp
	if cap(s) < n {
		s = make([]wire.BatchResult, n)
	} else {
		s = s[:n]
		for i := range s {
			s[i] = wire.BatchResult{}
		}
	}
	*sp = s
	return sp
}

// putResults clears the slice's pointer fields before pooling it, so a
// recycled slice can neither pin the previous batch's responses in
// memory nor leak a stale result into a future response.
func putResults(sp *[]wire.BatchResult) {
	s := *sp
	for i := range s {
		s[i] = wire.BatchResult{}
	}
	if cap(s) > maxPooledResults {
		return
	}
	*sp = s[:0]
	resultsPool.Put(sp)
}

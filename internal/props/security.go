package props

import (
	"fmt"

	"repro/internal/lang/ast"
	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/sem/events"
	"repro/internal/sem/mem"
)

func parseSrc(src string) (*ast.Program, error) { return parser.Parse(src) }

// labelsOf returns the resolved labels of a labeled command.
func labelsOf(c ast.Cmd) (*ast.Labels, bool) {
	lc, ok := c.(ast.Labeled)
	if !ok {
		return nil, false
	}
	return lc.Labels(), true
}

// ---------------------------------------------------------------------------
// Property 5: write labels

// CheckWriteLabel verifies over random executions that every single
// step of a command with write label ew leaves the machine-environment
// projection unchanged at every level ℓ with ew ⋢ ℓ.
func (c *Checker) CheckWriteLabel(trials int) error {
	lat := c.Res.Lat
	for i := 0; i < trials; i++ {
		init := c.freshMemory()
		m, err := c.newMachine(init)
		if err != nil {
			return err
		}
		for step := 0; step < c.maxSteps(); step++ {
			head := m.Peek()
			if head == nil {
				break
			}
			lab, ok := labelsOf(head)
			if !ok {
				return fmt.Errorf("write-label trial %d: unlabeled head %T", i, head)
			}
			before := m.Env().Clone()
			if !m.Step() {
				break
			}
			for _, lv := range lat.Levels() {
				if lat.Leq(lab.WL, lv) {
					continue
				}
				if !m.Env().ProjEqual(before, lv) {
					return fmt.Errorf("write-label trial %d: step %d (cmd at %s, ew=%s) modified level-%s machine state",
						i, step, head.Pos(), lab.WL, lv)
				}
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Property 6: read labels

// CheckReadLabel verifies the read-label requirement on single steps:
// if two configurations agree on the variables evaluated by the next
// step (vars1) and their machine environments are er-equivalent, the
// step takes the same time in both. The check constructs the variant
// configuration by scrambling memory outside vars1 and perturbing the
// machine environment at levels not below er.
func (c *Checker) CheckReadLabel(trials int) error {
	lat := c.Res.Lat
	for i := 0; i < trials; i++ {
		init := c.freshMemory()
		m1, err := c.newMachine(init)
		if err != nil {
			return err
		}
		// Walk to a random step index, then compare one step.
		target := c.Rand.Intn(64)
		for s := 0; s < target && m1.Peek() != nil; s++ {
			m1.Step()
		}
		head := m1.Peek()
		if head == nil {
			continue
		}
		lab, _ := labelsOf(head)
		m2 := m1.Clone()

		// Scramble memory outside vars1 of the head command. Variables
		// in vars1 must agree (the property's premise).
		keep := make(map[string]bool)
		for _, v := range ast.Vars1(head) {
			keep[v] = true
		}
		// NOTE: scrambling any variable not in vars1 is allowed by the
		// premise, but to keep the comparison single-step (same head
		// command reached), scrambling is done on the clone only and
		// only one step is compared.
		c.scramble2(m2.Memory(), func(name string) bool { return !keep[name] })

		// Perturb machine environment at levels where modification
		// preserves ~er: every level ℓ' with ℓ' ⋢ er... a write with
		// ew' not below any level ⊑ er. Choose ew' among levels that
		// are not ⊑ er.
		for _, lv := range lat.Levels() {
			if lat.Leq(lv, lab.RL) {
				continue
			}
			// Modifying partitions at levels ⊒ lv preserves ~er: if some
			// p ⊑ er had lv ⊑ p then lv ⊑ er, a contradiction. An odd
			// access count maximizes the chance of flipping any hidden
			// parity-style state a broken design might keep.
			for j := 0; j < 5; j++ {
				m2.Env().Access(hw.Read, uint64(c.Rand.Intn(1<<14)), lv, lv)
			}
		}
		if !m1.Env().LowEqual(m2.Env(), lab.RL) {
			return fmt.Errorf("read-label trial %d: perturbation broke ~er (test harness bug)", i)
		}

		t1 := m1.Clock()
		t2 := m2.Clock()
		m1.Step()
		m2.Step()
		d1 := m1.Clock() - t1
		d2 := m2.Clock() - t2
		if d1 != d2 {
			return fmt.Errorf("read-label trial %d: step at %s (er=%s) took %d vs %d cycles under er-equivalent configurations",
				i, head.Pos(), lab.RL, d1, d2)
		}
	}
	return nil
}

// scramble2 randomizes variables selected by name.
func (c *Checker) scramble2(m *mem.Memory, pred func(string) bool) {
	for _, d := range c.Prog.Decls {
		if !pred(d.Name) {
			continue
		}
		if d.IsArray {
			for i := int64(0); i < d.Size; i++ {
				m.SetEl(d.Name, i, int64(c.Rand.Intn(64)))
			}
		} else {
			m.Set(d.Name, int64(c.Rand.Intn(64)))
		}
	}
}

// ---------------------------------------------------------------------------
// Property 7: single-step machine-environment noninterference

// CheckSingleStepNI verifies that for every level ℓ, a single step
// taken from two configurations with m1 ~ℓ m2 and E1 ~ℓ E2 yields
// E1' ~ℓ E2'.
func (c *Checker) CheckSingleStepNI(trials int) error {
	lat := c.Res.Lat
	levels := lat.Levels()
	for i := 0; i < trials; i++ {
		lv := levels[c.Rand.Intn(len(levels))]
		init := c.freshMemory()
		m1, err := c.newMachine(init)
		if err != nil {
			return err
		}
		target := c.Rand.Intn(64)
		for s := 0; s < target && m1.Peek() != nil; s++ {
			m1.Step()
		}
		if m1.Peek() == nil {
			continue
		}
		m2 := m1.Clone()
		// Vary memory at levels ⋢ lv: preserves m1 ~lv m2.
		c.scramble(m2.Memory(), func(l lattice.Label) bool { return !lat.Leq(l, lv) })
		// Vary machine environment at levels ⋢ lv: preserves E1 ~lv E2.
		for _, pl := range levels {
			if lat.Leq(pl, lv) {
				continue
			}
			for j := 0; j < 4; j++ {
				m2.Env().Access(hw.Read, uint64(c.Rand.Intn(1<<14)), pl, pl)
			}
		}
		if !m1.Env().LowEqual(m2.Env(), lv) {
			return fmt.Errorf("single-step-NI trial %d: perturbation broke ~%s (test harness bug)", i, lv)
		}
		head := m1.Peek()
		m1.Step()
		m2.Step()
		if !m1.Env().LowEqual(m2.Env(), lv) {
			return fmt.Errorf("single-step-NI trial %d: step at %s broke E1 ~%s E2",
				i, head.Pos(), lv)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Theorem 1: memory and machine-environment noninterference

// CheckNoninterference verifies Theorem 1 end-to-end: for a well-typed
// program and any level ℓ, two runs whose initial memories agree at
// ℓ-and-below (and equal initial environments) terminate with final
// memories and machine environments that still agree at ℓ-and-below.
func (c *Checker) CheckNoninterference(trials int) error {
	lat := c.Res.Lat
	levels := lat.Levels()
	gamma := c.Res.Vars
	for i := 0; i < trials; i++ {
		lv := levels[c.Rand.Intn(len(levels))]
		init1 := c.freshMemory()
		m1, err := c.newMachine(init1)
		if err != nil {
			return err
		}
		m2, err := c.newMachine(init1)
		if err != nil {
			return err
		}
		// Vary the second run's memory at levels ⋢ lv.
		c.scramble(m2.Memory(), func(l lattice.Label) bool { return !lat.Leq(l, lv) })
		if err := m1.Run(c.maxSteps()); err != nil {
			return fmt.Errorf("NI trial %d: %w", i, err)
		}
		if err := m2.Run(c.maxSteps()); err != nil {
			return fmt.Errorf("NI trial %d: %w", i, err)
		}
		if !m1.Memory().LowEquiv(m2.Memory(), lat, gamma, lv) {
			return fmt.Errorf("NI trial %d: final memories differ at ~%s", i, lv)
		}
		if !m1.Env().LowEqual(m2.Env(), lv) {
			return fmt.Errorf("NI trial %d: final machine environments differ at ~%s", i, lv)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Lemma 1: low-determinism of mitigate commands

// CheckLowDeterminism verifies that the subsequence of executed
// mitigate commands whose pc-label is outside L↑ (for L = levels not
// observable at the adversary level) is identical across runs that
// agree on the corresponding low memory.
func (c *Checker) CheckLowDeterminism(trials int, adv lattice.Label) error {
	lat := c.Res.Lat
	// L_ℓA = all levels not ⊑ adv; its upward closure.
	var hidden []lattice.Label
	for _, l := range lat.Levels() {
		if !lat.Leq(l, adv) {
			hidden = append(hidden, l)
		}
	}
	closure := lattice.UpwardClosure(lat, hidden)
	inClosure := func(l lattice.Label) bool { return lattice.Contains(closure, l) }

	for i := 0; i < trials; i++ {
		init := c.freshMemory()
		m1, err := c.newMachine(init)
		if err != nil {
			return err
		}
		m2, err := c.newMachine(init)
		if err != nil {
			return err
		}
		// Vary variables whose level is in the closure (hidden from
		// the adversary).
		c.scramble(m2.Memory(), func(l lattice.Label) bool { return inClosure(l) })
		if err := m1.Run(c.maxSteps()); err != nil {
			return fmt.Errorf("low-det trial %d: %w", i, err)
		}
		if err := m2.Run(c.maxSteps()); err != nil {
			return fmt.Errorf("low-det trial %d: %w", i, err)
		}
		p1 := m1.Mitigations().Filter(func(r events.MitRecord) bool {
			return !inClosure(c.Res.Mitigates[r.ID].PC)
		})
		p2 := m2.Mitigations().Filter(func(r events.MitRecord) bool {
			return !inClosure(c.Res.Mitigates[r.ID].PC)
		})
		ids1, ids2 := p1.IDs(), p2.IDs()
		if len(ids1) != len(ids2) {
			return fmt.Errorf("low-det trial %d: projected mitigate sequences differ in length (%d vs %d)",
				i, len(ids1), len(ids2))
		}
		for j := range ids1 {
			if ids1[j] != ids2[j] {
				return fmt.Errorf("low-det trial %d: mitigate id sequence differs at %d (M%d vs M%d)",
					i, j, ids1[j], ids2[j])
			}
		}
	}
	return nil
}

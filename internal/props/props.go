// Package props provides executable checkers for the paper's
// software–hardware contract: the faithfulness requirements
// (Properties 1–4, §3.5), the security requirements (Properties 5–7,
// §3.6), memory and machine-environment noninterference (Theorem 1),
// and low-determinism of mitigate commands (Lemma 1).
//
// This is the practical form of the paper's second contribution: a
// formalized contract that lets hardware models be validated
// independently of the programs that run on them. A hardware designer
// plugs a new hw.Env implementation into a Checker and runs the suite
// over randomly generated well-typed programs and inputs; any
// counterexample is reported with enough detail to debug.
package props

import (
	"fmt"
	"math/rand"

	"repro/internal/lang/ast"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/sem/core"
	"repro/internal/sem/full"
	"repro/internal/sem/mem"
	"repro/internal/types"
)

// EnvFactory creates a fresh machine environment in its initial state.
type EnvFactory func() hw.Env

// Checker verifies the contract for one (program, hardware) pair.
type Checker struct {
	Prog   *ast.Program
	Res    *types.Result
	NewEnv EnvFactory
	// Opts configures the full-semantics machines (zero = defaults).
	Opts full.Options
	// MaxSteps bounds each run; default 500_000.
	MaxSteps int
	// Rand drives input generation; required.
	Rand *rand.Rand
}

func (c *Checker) maxSteps() int {
	if c.MaxSteps == 0 {
		return 500_000
	}
	return c.MaxSteps
}

// freshMemory returns a new memory with every variable randomized.
func (c *Checker) freshMemory() *mem.Memory {
	m := mem.New(c.Prog)
	c.randomize(m)
	return m
}

// randomize fills every declared variable with a random small value.
func (c *Checker) randomize(m *mem.Memory) {
	for _, d := range c.Prog.Decls {
		if d.IsArray {
			for i := int64(0); i < d.Size; i++ {
				m.SetEl(d.Name, i, int64(c.Rand.Intn(64)))
			}
		} else {
			m.Set(d.Name, int64(c.Rand.Intn(64)))
		}
	}
}

// copyInto copies the values of src into dst (same declarations).
func (c *Checker) copyInto(dst, src *mem.Memory) {
	for _, d := range c.Prog.Decls {
		if d.IsArray {
			for i := int64(0); i < d.Size; i++ {
				dst.SetEl(d.Name, i, src.GetEl(d.Name, i))
			}
		} else {
			dst.Set(d.Name, src.Get(d.Name))
		}
	}
}

// scramble assigns fresh random values to every variable whose level
// satisfies pred, leaving others intact.
func (c *Checker) scramble(m *mem.Memory, pred func(lattice.Label) bool) {
	for _, d := range c.Prog.Decls {
		if !pred(d.Label) {
			continue
		}
		if d.IsArray {
			for i := int64(0); i < d.Size; i++ {
				m.SetEl(d.Name, i, int64(c.Rand.Intn(64)))
			}
		} else {
			m.Set(d.Name, int64(c.Rand.Intn(64)))
		}
	}
}

// newMachine builds a full machine with the given memory contents.
func (c *Checker) newMachine(init *mem.Memory) (*full.Machine, error) {
	m, err := full.New(c.Prog, c.Res, c.NewEnv(), c.Opts)
	if err != nil {
		return nil, err
	}
	if init != nil {
		c.copyInto(m.Memory(), init)
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// Property 1: adequacy of the core semantics

// CheckAdequacy verifies that the full semantics and the core semantics
// describe the same executions: equal final memories, equal
// (value-wise) event traces, and equal step counts, over random inputs.
func (c *Checker) CheckAdequacy(trials int) error {
	for i := 0; i < trials; i++ {
		init := mem.New(c.Prog)
		c.randomize(init)

		ck := core.New(c.Prog, init.Clone())
		if err := ck.Run(c.maxSteps()); err != nil {
			return fmt.Errorf("adequacy trial %d: core run: %w", i, err)
		}
		fm, err := c.newMachine(init)
		if err != nil {
			return err
		}
		if err := fm.Run(c.maxSteps()); err != nil {
			return fmt.Errorf("adequacy trial %d: full run: %w", i, err)
		}
		if !fm.Memory().Equal(ck.Memory()) {
			return fmt.Errorf("adequacy trial %d: final memories differ", i)
		}
		if !fm.Trace().ValuesEqual(ck.Trace()) {
			return fmt.Errorf("adequacy trial %d: event values differ\ncore: %v\nfull: %v",
				i, ck.Trace(), fm.Trace())
		}
		if fm.Steps() != ck.Steps() {
			return fmt.Errorf("adequacy trial %d: step counts differ (core %d, full %d)",
				i, ck.Steps(), fm.Steps())
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Property 2: deterministic execution

// CheckDeterminism verifies that two runs from identical configurations
// produce identical clocks, traces, and final memories.
func (c *Checker) CheckDeterminism(trials int) error {
	for i := 0; i < trials; i++ {
		init := mem.New(c.Prog)
		c.randomize(init)
		m1, err := c.newMachine(init)
		if err != nil {
			return err
		}
		m2, err := c.newMachine(init)
		if err != nil {
			return err
		}
		if err := m1.Run(c.maxSteps()); err != nil {
			return fmt.Errorf("determinism trial %d: %w", i, err)
		}
		if err := m2.Run(c.maxSteps()); err != nil {
			return fmt.Errorf("determinism trial %d: %w", i, err)
		}
		if m1.Clock() != m2.Clock() {
			return fmt.Errorf("determinism trial %d: clocks differ (%d vs %d)", i, m1.Clock(), m2.Clock())
		}
		if !m1.Trace().Equal(m2.Trace()) {
			return fmt.Errorf("determinism trial %d: traces differ", i)
		}
		if !m1.Memory().Equal(m2.Memory()) {
			return fmt.Errorf("determinism trial %d: memories differ", i)
		}
		if !m1.Env().LowEqual(m2.Env(), c.Res.Lat.Top()) {
			return fmt.Errorf("determinism trial %d: machine environments differ", i)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Property 3: sequential composition

// CheckSequentialComposition verifies that running the program is
// equivalent to running it with its sequences reassociated — the
// observable content of the paper's sequential-composition property
// (time accumulates and the machine environment propagates through ';'
// regardless of grouping).
func (c *Checker) CheckSequentialComposition(trials int) error {
	re := reassociate(c.Prog.Body)
	progB := &ast.Program{
		Decls:        c.Prog.Decls,
		Body:         re,
		NumNodes:     c.Prog.NumNodes,
		NumMitigates: c.Prog.NumMitigates,
	}
	for i := 0; i < trials; i++ {
		init := mem.New(c.Prog)
		c.randomize(init)
		m1, err := c.newMachine(init)
		if err != nil {
			return err
		}
		m2, err := full.New(progB, c.Res, c.NewEnv(), c.Opts)
		if err != nil {
			return err
		}
		c.copyInto(m2.Memory(), init)
		if err := m1.Run(c.maxSteps()); err != nil {
			return fmt.Errorf("seq trial %d: %w", i, err)
		}
		if err := m2.Run(c.maxSteps()); err != nil {
			return fmt.Errorf("seq trial %d: %w", i, err)
		}
		if m1.Clock() != m2.Clock() || !m1.Trace().Equal(m2.Trace()) || !m1.Memory().Equal(m2.Memory()) {
			return fmt.Errorf("seq trial %d: reassociated program behaves differently", i)
		}
	}
	return nil
}

// reassociate rebuilds all Seq chains left-associatively (the parser
// builds them right-associatively), preserving leaf order and IDs.
func reassociate(c ast.Cmd) ast.Cmd {
	leaves, ids := flatten(c)
	if len(leaves) == 1 {
		return leaves[0]
	}
	out := leaves[0]
	for i := 1; i < len(leaves); i++ {
		out = &ast.Seq{TokPos: out.Pos(), NodeID: ids[(i-1)%len(ids)], First: out, Second: recurse(leaves[i])}
	}
	return out
}

// recurse reassociates within compound commands.
func recurse(c ast.Cmd) ast.Cmd {
	switch cm := c.(type) {
	case *ast.If:
		cp := *cm
		cp.Then = reassociate(cm.Then)
		cp.Else = reassociate(cm.Else)
		return &cp
	case *ast.While:
		cp := *cm
		cp.Body = reassociate(cm.Body)
		return &cp
	case *ast.Mitigate:
		cp := *cm
		cp.Body = reassociate(cm.Body)
		return &cp
	}
	return c
}

// flatten returns the non-Seq leaves of a Seq chain in order, plus the
// Seq node IDs encountered.
func flatten(c ast.Cmd) ([]ast.Cmd, []int) {
	if s, ok := c.(*ast.Seq); ok {
		l1, i1 := flatten(s.First)
		l2, i2 := flatten(s.Second)
		return append(l1, l2...), append(append(i1, s.NodeID), i2...)
	}
	return []ast.Cmd{recurse(c)}, nil
}

// ---------------------------------------------------------------------------
// Property 4: accurate sleep duration

// CheckSleepAccuracy verifies that from identical configurations, a
// program that sleeps n versus one that sleeps n' shows a duration
// difference of exactly max(n,0) − max(n',0). (Our full semantics
// charges instruction-fetch and operand-read overhead on sleep like on
// every command; the paper's Property 4 idealizes that overhead away,
// so the checkable content is the exact delta. See DESIGN.md.)
func CheckSleepAccuracy(lat lattice.Lattice, newEnv EnvFactory, ns []int64) error {
	prog, res, err := buildProgram("var x : L;\nsleep(x);\n", lat)
	if err != nil {
		return err
	}
	durations := make([]uint64, len(ns))
	for i, n := range ns {
		m, err := full.New(prog, res, newEnv(), full.Options{})
		if err != nil {
			return err
		}
		m.Memory().Set("x", n)
		if err := m.Run(1000); err != nil {
			return err
		}
		durations[i] = m.Clock()
	}
	for i := 1; i < len(ns); i++ {
		want := maxZero(ns[i]) - maxZero(ns[0])
		got := int64(durations[i]) - int64(durations[0])
		if got != want {
			return fmt.Errorf("sleep accuracy: sleep(%d)-sleep(%d) = %d cycles, want %d",
				ns[i], ns[0], got, want)
		}
	}
	return nil
}

func maxZero(n int64) int64 {
	if n < 0 {
		return 0
	}
	return n
}

func buildProgram(src string, lat lattice.Lattice) (*ast.Program, *types.Result, error) {
	prog, err := parseSrc(src)
	if err != nil {
		return nil, nil, err
	}
	res, err := types.Check(prog, lat)
	if err != nil {
		return nil, nil, err
	}
	return prog, res, nil
}

package props

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/lang/ast"
	"repro/internal/lattice"
	"repro/internal/leakage"
	"repro/internal/machine/hw"
	"repro/internal/progen"
	"repro/internal/sem/mem"
	"repro/internal/server"
	"repro/internal/session"
)

// TestBoundMonotonicOnGeneratedPrograms is the §7 accounting property
// over random well-typed programs: serve a sequence of requests with
// random inputs through a session-accounted server, keep the raw epoch
// log (elapsed cycles and mitigation count per request), and check on
// EVERY prefix that (a) the session's reported SpentBits equals the §7
// bound recomputed independently from the log's cumulative sums, and
// (b) the bound never decreases — leakage budgets only ratchet up, so
// a dip would let a tenant win back spent bits.
func TestBoundMonotonicOnGeneratedPrograms(t *testing.T) {
	lat := lattice.TwoPoint()
	closure := lat.Size() - 1
	ctx := context.Background()
	sawMitigation := false
	for seed := int64(0); seed < 6; seed++ {
		prog, res, src, err := progen.GenerateTyped(progen.Config{
			Lat: lat, Seed: 300 + seed, AllowMitigate: true, AllowSleep: true,
		}, 50)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(prog, res, server.Options{
			Env: hw.NewPartitioned(lat, hw.Table1Config()),
		})
		if err != nil {
			t.Fatal(err)
		}
		mgr, err := session.NewManager(session.Options{Lat: lat})
		if err != nil {
			t.Fatal(err)
		}
		rnd := rand.New(rand.NewSource(seed))

		// Raw epoch log, accumulated independently of the manager.
		var cumT uint64
		cumK := 0
		prev := 0.0
		for epoch := 0; epoch < 12; epoch++ {
			tk, err := mgr.Begin("prop")
			if err != nil {
				t.Fatalf("seed %d epoch %d: %v\n%s", seed, epoch, err, src)
			}
			resp, err := srv.HandleWith(ctx, func(m *mem.Memory) {
				randomizeDecls(prog, m, rnd)
			}, tk.Mit())
			if err != nil {
				tk.Abort()
				t.Fatalf("seed %d epoch %d: %v\n%s", seed, epoch, err, src)
			}
			info := tk.Commit(resp.Time, len(resp.Mitigations))

			cumT += resp.Time
			cumK += len(resp.Mitigations)
			if info.CumTime != cumT || info.CumMitigations != cumK {
				t.Fatalf("seed %d epoch %d: account (T=%d, K=%d) disagrees with raw log (T=%d, K=%d)\n%s",
					seed, epoch, info.CumTime, info.CumMitigations, cumT, cumK, src)
			}
			want := leakage.Bound(closure, cumK, cumT)
			if info.SpentBits != want {
				t.Fatalf("seed %d epoch %d: SpentBits = %v, recomputed bound = %v\n%s",
					seed, epoch, info.SpentBits, want, src)
			}
			if info.SpentBits < prev {
				t.Fatalf("seed %d epoch %d: bound decreased %v → %v\n%s",
					seed, epoch, prev, info.SpentBits, src)
			}
			prev = info.SpentBits
		}
		// A program that executed at least one mitigation must have a
		// strictly positive bound by the end; a mitigation-free run
		// must report exactly zero (K = 0 zeroes the §7 product).
		if cumK > 0 && prev <= 0 {
			t.Errorf("seed %d: %d mitigations but zero bound\n%s", seed, cumK, src)
		}
		if cumK == 0 && prev != 0 {
			t.Errorf("seed %d: no mitigations but bound %v\n%s", seed, prev, src)
		}
		sawMitigation = sawMitigation || cumK > 0
	}
	// The property is vacuous if no seed ever mitigates; the chosen
	// seed range includes several that do (checked once, pinned here).
	if !sawMitigation {
		t.Error("no generated program executed a mitigation; widen the seed range")
	}
}

// randomizeDecls fills every declared variable with a random small
// value — the per-request input scrambling the property quantifies
// over.
func randomizeDecls(prog *ast.Program, m *mem.Memory, rnd *rand.Rand) {
	for _, d := range prog.Decls {
		if d.IsArray {
			for i := int64(0); i < d.Size; i++ {
				m.SetEl(d.Name, i, int64(rnd.Intn(64)))
			}
		} else {
			m.Set(d.Name, int64(rnd.Intn(64)))
		}
	}
}

// TestBoundMonotoneInArguments pins the algebraic fact the serving
// stack relies on: Bound(c, k, t) is non-decreasing in the mitigation
// count and in elapsed time separately, for every small configuration.
// The accounting code adds to k and t but never re-derives the bound
// from scratch differently, so this is the one place the shape of the
// formula itself is property-checked.
func TestBoundMonotoneInArguments(t *testing.T) {
	for c := 1; c <= 3; c++ {
		for k := 0; k < 40; k++ {
			for _, tm := range []uint64{0, 1, 2, 7, 64, 1000, 1_000_000} {
				b := leakage.Bound(c, k, tm)
				if bk := leakage.Bound(c, k+1, tm); bk < b {
					t.Fatalf("Bound(%d,%d,%d)=%v > Bound(%d,%d,%d)=%v: not monotone in K",
						c, k, tm, b, c, k+1, tm, bk)
				}
				if bt := leakage.Bound(c, k, tm+1); bt < b {
					t.Fatalf("Bound(%d,%d,%d)=%v > Bound(%d,%d,%d)=%v: not monotone in T",
						c, k, tm, b, c, k, tm+1, bt)
				}
			}
		}
	}
}

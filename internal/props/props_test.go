package props

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/progen"
	"repro/internal/sem/full"
	"repro/internal/types"
)

// checkerFor builds a Checker for the given source and environment.
func checkerFor(t *testing.T, src string, lat lattice.Lattice, newEnv EnvFactory, seed int64) *Checker {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := types.Check(prog, lat)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Checker{
		Prog:   prog,
		Res:    res,
		NewEnv: newEnv,
		Rand:   rand.New(rand.NewSource(seed)),
	}
}

// a program touching arrays, loops, branches, and mitigation.
const richSrc = `
var h : H;
var h2 : H;
var l : L;
var l2 : L;
var i : L;
array hm[8] : H;
array lm[8] : L;

l := 3;
while (i < 4) {
    lm[i] := l + i;
    i := i + 1;
}
mitigate (64, H) [L,L] {
    if (h > 5) [H,H] {
        h2 := hm[h % 8] [H,H];
    } else {
        h2 := h + 1 [H,H];
        sleep(h % 7) [H,H];
    }
}
l2 := lm[2] + 1;
`

func secureEnvs(lat lattice.Lattice) map[string]EnvFactory {
	return map[string]EnvFactory{
		"partitioned": func() hw.Env { return hw.NewPartitioned(lat, hw.TinyConfig()) },
		"nofill":      func() hw.Env { return hw.NewNoFill(lat, hw.TinyConfig()) },
		"flat":        func() hw.Env { return hw.NewFlat(lat, 2) },
	}
}

func TestSecureEnvsSatisfyContract(t *testing.T) {
	lat := lattice.TwoPoint()
	for name, factory := range secureEnvs(lat) {
		t.Run(name, func(t *testing.T) {
			c := checkerFor(t, richSrc, lat, factory, 1)
			if err := c.CheckAdequacy(10); err != nil {
				t.Errorf("Property 1 (adequacy): %v", err)
			}
			if err := c.CheckDeterminism(10); err != nil {
				t.Errorf("Property 2 (determinism): %v", err)
			}
			if err := c.CheckSequentialComposition(5); err != nil {
				t.Errorf("Property 3 (seq composition): %v", err)
			}
			if err := c.CheckWriteLabel(10); err != nil {
				t.Errorf("Property 5 (write label): %v", err)
			}
			if err := c.CheckReadLabel(40); err != nil {
				t.Errorf("Property 6 (read label): %v", err)
			}
			if err := c.CheckSingleStepNI(40); err != nil {
				t.Errorf("Property 7 (single-step NI): %v", err)
			}
			if err := c.CheckNoninterference(10); err != nil {
				t.Errorf("Theorem 1 (noninterference): %v", err)
			}
			if err := c.CheckLowDeterminism(10, lat.Bot()); err != nil {
				t.Errorf("Lemma 1 (low determinism): %v", err)
			}
		})
	}
}

func TestSleepAccuracyAllEnvs(t *testing.T) {
	lat := lattice.TwoPoint()
	for name, factory := range secureEnvs(lat) {
		if err := CheckSleepAccuracy(lat, factory, []int64{0, 1, 10, 500, -3}); err != nil {
			t.Errorf("%s: Property 4 (sleep accuracy): %v", name, err)
		}
	}
	if err := CheckSleepAccuracy(lat, func() hw.Env { return hw.NewUnpartitioned(lat, hw.TinyConfig()) },
		[]int64{0, 7, 100}); err != nil {
		t.Errorf("unpartitioned: Property 4: %v", err)
	}
}

// The unpartitioned baseline must FAIL the write-label property: a
// high-context access fills the shared (public) cache. This shows the
// checkers have teeth.
func TestUnpartitionedViolatesWriteLabel(t *testing.T) {
	lat := lattice.TwoPoint()
	src := `
var h : H;
var h2 : H;
h2 := h + 1 [H,H];
`
	c := checkerFor(t, src, lat, func() hw.Env { return hw.NewUnpartitioned(lat, hw.TinyConfig()) }, 3)
	err := c.CheckWriteLabel(3)
	if err == nil {
		t.Fatal("unpartitioned hardware unexpectedly satisfies Property 5")
	}
	if !strings.Contains(err.Error(), "modified level-L machine state") {
		t.Errorf("unexpected failure mode: %v", err)
	}
}

// A deliberately broken "hardware" whose timing depends on state above
// the read label must fail Property 6.
type leakyEnv struct {
	*hw.Partitioned
	lat lattice.Lattice
	// secretToggle flips on every H access and leaks into L timing.
	secretToggle uint64
}

func (l *leakyEnv) Access(kind hw.AccessKind, addr uint64, er, ew lattice.Label) uint64 {
	base := l.Partitioned.Access(kind, addr, er, ew)
	if ew == l.lat.Top() {
		l.secretToggle ^= 1
	}
	return base + l.secretToggle // leaks H state into every duration
}

func (l *leakyEnv) Clone() hw.Env {
	return &leakyEnv{
		Partitioned:  l.Partitioned.Clone().(*hw.Partitioned),
		lat:          l.lat,
		secretToggle: l.secretToggle,
	}
}

// ProjEqual/LowEqual unwrap the embedded partitioned state. The toggle
// is deliberately excluded — it is hidden hardware state, which is
// exactly why this design is insecure.
func (l *leakyEnv) ProjEqual(other hw.Env, lv lattice.Label) bool {
	o, ok := other.(*leakyEnv)
	return ok && l.Partitioned.ProjEqual(o.Partitioned, lv)
}

func (l *leakyEnv) LowEqual(other hw.Env, lv lattice.Label) bool {
	o, ok := other.(*leakyEnv)
	return ok && l.Partitioned.LowEqual(o.Partitioned, lv)
}

func TestLeakyEnvViolatesReadLabel(t *testing.T) {
	lat := lattice.TwoPoint()
	// The secret branch does a different number of H accesses, flipping
	// the toggle differently; the trailing L command's duration then
	// depends on it.
	src := `
var h : H;
var h2 : H;
var l : L;
mitigate (64, H) [L,L] {
    if (h % 2) [H,H] {
        h2 := h + 1 [H,H];
    } else {
        skip [H,H];
    }
}
l := 1;
`
	c := checkerFor(t, src, lat, func() hw.Env {
		return &leakyEnv{Partitioned: hw.NewPartitioned(lat, hw.TinyConfig()), lat: lat}
	}, 11)
	errRead := c.CheckReadLabel(400)
	errDet := c.CheckDeterminism(5)
	if errDet != nil {
		t.Fatalf("leaky env should still be deterministic: %v", errDet)
	}
	// Theorem 1 (noninterference of memory and machine state) holds
	// even for this design — the leak is timing-only — which is
	// exactly why the contract needs the read-label property.
	if err := c.CheckNoninterference(10); err != nil {
		t.Errorf("leaky env should still satisfy Theorem 1's state-only property: %v", err)
	}
	if errRead == nil {
		t.Error("leaky hardware passed the read-label check")
	}
}

// FlushOnHigh is globally secure for well-typed programs but violates
// the per-step write-label requirement: the contract is sufficient, not
// necessary, and the checkers expose exactly which clause a design
// trades away.
func TestFlushOnHighContractProfile(t *testing.T) {
	lat := lattice.TwoPoint()
	c := checkerFor(t, richSrc, lat,
		func() hw.Env { return hw.NewFlushOnHigh(lat, hw.TinyConfig()) }, 21)
	if err := c.CheckWriteLabel(10); err == nil {
		t.Error("flush-on-high should violate Property 5 (it empties public state in high contexts)")
	}
	if err := c.CheckDeterminism(5); err != nil {
		t.Errorf("determinism: %v", err)
	}
	if err := c.CheckAdequacy(5); err != nil {
		t.Errorf("adequacy: %v", err)
	}
	if err := c.CheckReadLabel(40); err != nil {
		t.Errorf("read label: %v", err)
	}
	if err := c.CheckNoninterference(10); err != nil {
		t.Errorf("end-to-end noninterference should still hold: %v", err)
	}
}

// The lock-protect (PL-cache-style) design fails the write-label
// property on cold confidential fills — the formal counterpart of the
// paper's §2.2 critique that such designs are secure only once the
// secret working set is preloaded.
func TestLockProtectViolatesWriteLabel(t *testing.T) {
	lat := lattice.TwoPoint()
	src := `
var h : H;
var h2 : H;
var l : L;
l := 1;
h2 := h + 1 [H,H];
`
	c := checkerFor(t, src, lat,
		func() hw.Env { return hw.NewLockProtect(lat, hw.TinyConfig()) }, 31)
	if err := c.CheckWriteLabel(5); err == nil {
		t.Error("lock-protect should fail Property 5 on cold confidential fills")
	}
	if err := c.CheckDeterminism(3); err != nil {
		t.Errorf("lock-protect should still be deterministic: %v", err)
	}
}

func TestContractOnGeneratedPrograms(t *testing.T) {
	lat := lattice.TwoPoint()
	for seed := int64(0); seed < 8; seed++ {
		prog, res, src, err := progen.GenerateTyped(progen.Config{
			Lat: lat, Seed: seed, AllowMitigate: true, AllowSleep: true,
		}, 50)
		if err != nil {
			t.Fatal(err)
		}
		c := &Checker{
			Prog:   prog,
			Res:    res,
			NewEnv: func() hw.Env { return hw.NewPartitioned(lat, hw.TinyConfig()) },
			Rand:   rand.New(rand.NewSource(seed)),
		}
		if err := c.CheckAdequacy(3); err != nil {
			t.Errorf("seed %d adequacy: %v\n%s", seed, err, src)
		}
		if err := c.CheckDeterminism(3); err != nil {
			t.Errorf("seed %d determinism: %v\n%s", seed, err, src)
		}
		if err := c.CheckWriteLabel(2); err != nil {
			t.Errorf("seed %d write label: %v\n%s", seed, err, src)
		}
		if err := c.CheckSingleStepNI(10); err != nil {
			t.Errorf("seed %d single-step NI: %v\n%s", seed, err, src)
		}
		if err := c.CheckNoninterference(3); err != nil {
			t.Errorf("seed %d noninterference: %v\n%s", seed, err, src)
		}
		if err := c.CheckLowDeterminism(3, lat.Bot()); err != nil {
			t.Errorf("seed %d low determinism: %v\n%s", seed, err, src)
		}
	}
}

func TestContractThreeLevels(t *testing.T) {
	lat := lattice.ThreePoint()
	for seed := int64(0); seed < 4; seed++ {
		prog, res, src, err := progen.GenerateTyped(progen.Config{
			Lat: lat, Seed: 100 + seed, AllowMitigate: true,
		}, 50)
		if err != nil {
			t.Fatal(err)
		}
		c := &Checker{
			Prog:   prog,
			Res:    res,
			NewEnv: func() hw.Env { return hw.NewPartitioned(lat, hw.TinyConfig()) },
			Rand:   rand.New(rand.NewSource(seed)),
		}
		if err := c.CheckNoninterference(4); err != nil {
			t.Errorf("seed %d: %v\n%s", seed, err, src)
		}
		M, _ := lat.Lookup("M")
		if err := c.CheckLowDeterminism(3, M); err != nil {
			t.Errorf("seed %d low-det at M: %v\n%s", seed, err, src)
		}
	}
}

func TestCheckerRespectsOptions(t *testing.T) {
	lat := lattice.TwoPoint()
	c := checkerFor(t, "var l : L; l := 1;", lat,
		func() hw.Env { return hw.NewFlat(lat, 1) }, 5)
	c.Opts = full.Options{DisableMitigation: true}
	c.MaxSteps = 10
	if err := c.CheckDeterminism(2); err != nil {
		t.Error(err)
	}
}

func TestReassociatePreservesLeaves(t *testing.T) {
	prog, err := parser.Parse("var a : L; a := 1; a := 2; a := 3; if (a) { a := 4; a := 5; } else { skip; }")
	if err != nil {
		t.Fatal(err)
	}
	re := reassociate(prog.Body)
	l1, _ := flatten(prog.Body)
	l2, _ := flatten(re)
	if len(l1) != len(l2) {
		t.Fatalf("leaf counts differ: %d vs %d", len(l1), len(l2))
	}
}

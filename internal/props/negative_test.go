package props

import (
	"math/rand"
	"testing"

	"repro/internal/lattice"
	"repro/internal/machine/hw"
)

// wobblyEnv shares a mutable counter across all instances created by
// one factory, so two "identical" runs see different costs — a stand-in
// for hardware with cross-run hidden state (e.g. uninitialized DRAM
// timing), which Property 2 forbids.
type wobblyEnv struct {
	hw.Env
	counter *uint64
}

func (w *wobblyEnv) Access(kind hw.AccessKind, addr uint64, er, ew lattice.Label) uint64 {
	*w.counter++
	return w.Env.Access(kind, addr, er, ew) + (*w.counter)%3
}

func (w *wobblyEnv) Clone() hw.Env {
	return &wobblyEnv{Env: w.Env.Clone(), counter: w.counter}
}

func TestWobblyEnvFailsDeterminism(t *testing.T) {
	lat := lattice.TwoPoint()
	shared := new(uint64)
	c := checkerFor(t, "var l : L;\nl := 1;\nl := l + 2;\n", lat, func() hw.Env {
		return &wobblyEnv{Env: hw.NewFlat(lat, 2), counter: shared}
	}, 41)
	if err := c.CheckDeterminism(3); err == nil {
		t.Error("cross-instance hidden state should fail Property 2")
	}
}

// The unpartitioned design fails end-to-end machine-environment
// noninterference: secret-dependent accesses land in the shared cache,
// so two runs with ~L-equal memories end with distinguishable L state.
func TestUnpartitionedFailsNoninterference(t *testing.T) {
	lat := lattice.TwoPoint()
	src := `
var h : H;
var h2 : H;
array hm[8] : H;
h2 := hm[h % 8] [H,H];
`
	c := checkerFor(t, src, lat,
		func() hw.Env { return hw.NewUnpartitioned(lat, hw.TinyConfig()) }, 43)
	if err := c.CheckNoninterference(20); err == nil {
		t.Error("unpartitioned hardware should fail Theorem 1's environment clause")
	}
}

func TestSleepAccuracyCatchesBadPrograms(t *testing.T) {
	// buildProgram propagates parse/type errors.
	if _, _, err := buildProgram("var l : L; l := ;", lattice.TwoPoint()); err == nil {
		t.Error("parse error should propagate")
	}
	if _, _, err := buildProgram("var l : L; l := h;", lattice.TwoPoint()); err == nil {
		t.Error("type error should propagate")
	}
}

// Non-terminating programs surface step-limit errors through every
// whole-program checker rather than hanging.
func TestCheckersRespectStepBudget(t *testing.T) {
	lat := lattice.TwoPoint()
	c := checkerFor(t, "var x : L;\nwhile (1) { x := x + 1; }\n", lat,
		func() hw.Env { return hw.NewFlat(lat, 1) }, 47)
	c.MaxSteps = 100
	if err := c.CheckAdequacy(1); err == nil {
		t.Error("adequacy should report the step limit")
	}
	if err := c.CheckDeterminism(1); err == nil {
		t.Error("determinism should report the step limit")
	}
	if err := c.CheckSequentialComposition(1); err == nil {
		t.Error("seq composition should report the step limit")
	}
	if err := c.CheckNoninterference(1); err == nil {
		t.Error("noninterference should report the step limit")
	}
	if err := c.CheckLowDeterminism(1, lat.Bot()); err == nil {
		t.Error("low determinism should report the step limit")
	}
}

// A second lattice sanity: low-determinism filtering at the top level
// (adversary sees everything → empty projection → trivially succeeds).
func TestLowDeterminismTopAdversary(t *testing.T) {
	lat := lattice.TwoPoint()
	c := checkerFor(t, richSrc, lat,
		func() hw.Env { return hw.NewFlat(lat, 2) }, 53)
	c.Rand = rand.New(rand.NewSource(53))
	if err := c.CheckLowDeterminism(3, lat.Top()); err != nil {
		t.Errorf("top adversary: %v", err)
	}
}

package props

import (
	"math/rand"
	"testing"

	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/progen"
)

// TestContractSoak sweeps a wide seed range of generated programs
// through the full contract on the partitioned design — the repo's
// strongest end-to-end evidence that the type system, the hardware
// model, and the mitigation runtime compose securely. Skipped under
// -short.
func TestContractSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	lat := lattice.TwoPoint()
	for seed := int64(0); seed < 40; seed++ {
		prog, res, src, err := progen.GenerateTyped(progen.Config{
			Lat:  lat,
			Seed: 5000 + seed*31,
			// Deeper and busier than the default quick checks.
			MaxDepth:      4,
			StmtsPerBlock: 5,
			AllowMitigate: true,
			AllowSleep:    true,
		}, 60)
		if err != nil {
			t.Fatal(err)
		}
		c := &Checker{
			Prog:   prog,
			Res:    res,
			NewEnv: func() hw.Env { return hw.NewPartitioned(lat, hw.TinyConfig()) },
			Rand:   rand.New(rand.NewSource(seed)),
		}
		if err := c.CheckAdequacy(2); err != nil {
			t.Errorf("seed %d adequacy: %v\n%s", seed, err, src)
		}
		if err := c.CheckDeterminism(2); err != nil {
			t.Errorf("seed %d determinism: %v\n%s", seed, err, src)
		}
		if err := c.CheckWriteLabel(2); err != nil {
			t.Errorf("seed %d write label: %v\n%s", seed, err, src)
		}
		if err := c.CheckReadLabel(10); err != nil {
			t.Errorf("seed %d read label: %v\n%s", seed, err, src)
		}
		if err := c.CheckSingleStepNI(10); err != nil {
			t.Errorf("seed %d single-step NI: %v\n%s", seed, err, src)
		}
		if err := c.CheckNoninterference(2); err != nil {
			t.Errorf("seed %d noninterference: %v\n%s", seed, err, src)
		}
		if err := c.CheckLowDeterminism(2, lat.Bot()); err != nil {
			t.Errorf("seed %d low determinism: %v\n%s", seed, err, src)
		}
	}
}

// TestContractSoakNoFill repeats a lighter sweep on the no-fill design.
func TestContractSoakNoFill(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	lat := lattice.TwoPoint()
	for seed := int64(0); seed < 15; seed++ {
		prog, res, src, err := progen.GenerateTyped(progen.Config{
			Lat: lat, Seed: 9000 + seed*17, AllowMitigate: true, AllowSleep: true,
		}, 60)
		if err != nil {
			t.Fatal(err)
		}
		c := &Checker{
			Prog:   prog,
			Res:    res,
			NewEnv: func() hw.Env { return hw.NewNoFill(lat, hw.TinyConfig()) },
			Rand:   rand.New(rand.NewSource(seed)),
		}
		if err := c.CheckWriteLabel(2); err != nil {
			t.Errorf("seed %d write label: %v\n%s", seed, err, src)
		}
		if err := c.CheckSingleStepNI(8); err != nil {
			t.Errorf("seed %d single-step NI: %v\n%s", seed, err, src)
		}
		if err := c.CheckNoninterference(2); err != nil {
			t.Errorf("seed %d noninterference: %v\n%s", seed, err, src)
		}
	}
}

// Package login implements the paper's web-login case study (§8.3).
//
// A login server checks an attempted (username, password) pair against
// a table of MD5 digests of valid credentials. Valid usernames, the
// password digests, and the login state are secrets; the attempt and
// the response are public. The response value is always 1 (avoiding
// the storage channel), but the *time* of the response assignment leaks
// which usernames are valid — Bortz and Boneh's username-probing attack
// — unless the two secret-dependent phases (username lookup, password
// verification) are wrapped in mitigate commands.
//
// The login procedure is expressed in the timing-channel language; this
// package builds the program, lays out the credential table in its
// memory, and provides the prediction-sampling step of §8.2.
package login

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/lang/ast"
	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/mitigation"
	"repro/internal/sem/full"
	"repro/internal/sem/mem"
	"repro/internal/types"
)

// Config sizes the login application.
type Config struct {
	// TableSize is the capacity of the credential table (public).
	TableSize int
	// WorkFactor is the iteration count of the password-verification
	// loop, standing in for the cost of digest comparison/rehashing.
	WorkFactor int
	// WorkTableSize is the length of the verification work table (the
	// digest-computation lookup tables of a real implementation). Its
	// footprint is what makes halving the cache by partitioning
	// measurable: sized between a half-partition and the full L1 data
	// cache, it stays warm on unpartitioned hardware across requests
	// but thrashes a static partition. 0 disables the table. The scan
	// touches one element per cache line (stride 4), so the per-request
	// line footprint is WorkTableSize/4.
	WorkTableSize int
}

// DefaultConfig matches the scale of the paper's experiment: a table
// of up to 100 usernames, with password verification costing more than
// a full table scan (as real digest verification does) so that valid
// logins take measurably longer than invalid ones. The work table's
// 10 KiB footprint (320 lines, 2.5 per set on average) fits the
// 4-way Table-1 L1D when unpartitioned but half its sets overflow the
// 2-way static partitions, which is what makes partitioning cost
// measurable but modest (Table 2's moff row).
func DefaultConfig() Config {
	return Config{TableSize: 100, WorkFactor: 640, WorkTableSize: 1280}
}

// Credential is one valid (username, password) pair.
type Credential struct {
	User string
	Pass string
}

// Attempt is one login request (public, attacker-chosen).
type Attempt struct {
	User string
	Pass string
}

// Digest hashes a string to the int64 the simulated memory stores:
// the first 8 bytes of its MD5 digest (little-endian), masked positive.
func Digest(s string) int64 {
	sum := md5.Sum([]byte(s))
	v := int64(binary.LittleEndian.Uint64(sum[:8]))
	if v < 0 {
		v = -v
	}
	if v < 0 { // minInt64
		v = 0
	}
	return v
}

// Source returns the login program. The two mitigate commands cover
// exactly the secret-dependent phases, as in the paper: the username
// scan (line 1 of the paper's pseudo-code) and the password
// verification (lines 5–10). pred1/pred2 are public initial
// predictions, set by sampling (§8.2) or left at 1.
func Source(cfg Config) string {
	wsize := cfg.WorkTableSize
	if wsize <= 0 {
		wsize = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, `// Web-login case study (paper §8.3).
var user : L;       // attempted username digest (public)
var pass : L;       // attempted password digest (public)
var pred1 : L;      // initial prediction for the username scan
var pred2 : L;      // initial prediction for password verification
var response : L;   // always 1; its TIMING is the channel
var nvalid : H;     // number of valid usernames (secret)
array uhash[%d] : H; // MD5 digests of valid usernames (secret)
array phash[%d] : H; // MD5 digests of their passwords (secret)
array wtab[%d] : H;  // verification work table (digest lookup tables)
var state : H;      // login state (secret)
var found : H;
var idx : H;
var i : H;
var j : H;
var work : H;

// Phase 1: username lookup. Early exit makes lookup time depend on
// where (and whether) the username appears in the table. The high
// initializations live inside the mitigate: T-ASGN raises the timing
// end-label to the target's level, so they may not precede the final
// low response outside a mitigated region.
mitigate@0 (pred1, H) [L,L] {
    found := 0 [H,H];
    idx := 0 [H,H];
    i := 0 [H,H];
    while ((i < %d) && (found == 0)) [H,H] {
        if ((i < nvalid) && (uhash[i] == user)) [H,H] {
            found := 1 [H,H];
            idx := i [H,H];
        } else {
            skip [H,H];
        }
        i := i + 1 [H,H];
    }
}
// Phase 2: password verification, only for valid usernames — the
// expensive path that makes valid and invalid attempts distinguishable
// without mitigation.
mitigate@1 (pred2, H) [L,L] {
    if (found) [H,H] {
        j := 0 [H,H];
        while (j < %d) [H,H] {
            work := work + ((phash[idx] + wtab[(j * 4) %% %d]) ^ pass) [H,H];
            j := j + 1 [H,H];
        }
        if (phash[idx] == pass) [H,H] {
            state := state + 1 [H,H];
        } else {
            skip [H,H];
        }
    } else {
        skip [H,H];
    }
}
response := 1;
`, cfg.TableSize, cfg.TableSize, wsize, cfg.TableSize, cfg.WorkFactor, wsize)
	return b.String()
}

// App is a compiled login application.
type App struct {
	Cfg  Config
	Prog *ast.Program
	Res  *types.Result
	Lat  lattice.Lattice
}

// Build parses and type-checks the login program.
func Build(cfg Config, lat lattice.Lattice) (*App, error) {
	src := Source(cfg)
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("login: parse: %w", err)
	}
	res, err := types.Check(prog, lat)
	if err != nil {
		return nil, fmt.Errorf("login: typecheck: %w", err)
	}
	return &App{Cfg: cfg, Prog: prog, Res: res, Lat: lat}, nil
}

// Setup writes the secret credential table and the public attempt into
// a machine memory. pred1/pred2 are the public initial predictions.
func (a *App) Setup(m *mem.Memory, creds []Credential, att Attempt, pred1, pred2 int64) {
	if len(creds) > a.Cfg.TableSize {
		panic(fmt.Sprintf("login: %d credentials exceed table size %d", len(creds), a.Cfg.TableSize))
	}
	m.Set("nvalid", int64(len(creds)))
	for i, c := range creds {
		m.SetEl("uhash", int64(i), Digest(c.User))
		m.SetEl("phash", int64(i), Digest(c.Pass))
	}
	m.Set("user", Digest(att.User))
	m.Set("pass", Digest(att.Pass))
	m.Set("pred1", pred1)
	m.Set("pred2", pred2)
}

// RunOptions configure one login execution.
type RunOptions struct {
	Env      hw.Env
	Mitigate bool
	Policy   mitigation.Policy
	Pred1    int64
	Pred2    int64
}

// Run executes one login attempt and returns the full result; the
// response time is the Time of the trace's final event (the assignment
// to response).
func (a *App) Run(opts RunOptions, creds []Credential, att Attempt) (*full.Result, error) {
	fopts := full.Options{DisableMitigation: !opts.Mitigate, Policy: opts.Policy}
	return full.Execute(a.Prog, a.Res, opts.Env, fopts, func(m *mem.Memory) {
		a.Setup(m, creds, att, opts.Pred1, opts.Pred2)
	}, 10_000_000)
}

// ResponseTime extracts the time of the response assignment from a
// result; it reports an error if the program produced no response.
func ResponseTime(res *full.Result) (uint64, error) {
	for i := len(res.Trace) - 1; i >= 0; i-- {
		if res.Trace[i].Var == "response" {
			return res.Trace[i].Time, nil
		}
	}
	return 0, fmt.Errorf("login: no response event in trace")
}

// SamplePredictions implements §8.2's prediction sampling: run the
// login with mitigation disabled over sample attempts and return 110%
// of each mitigate body's largest observed elapsed time. (The paper
// uses 110% of the average; its sampling distribution put the average
// near the worst case, and covering the worst case is what makes the
// mitigated curves of Fig. 7 coincide exactly, so this implementation
// uses 110% of the sampled maximum — see EXPERIMENTS.md.) Callers
// should include worst-case attempts: an unknown username (full table
// scan) and a wrong password for a valid user (full verification work).
func (a *App) SamplePredictions(newEnv func() hw.Env, creds []Credential, attempts []Attempt) (int64, int64, error) {
	var max1, max2 uint64
	n := 0
	for _, att := range attempts {
		res, err := a.Run(RunOptions{Env: newEnv(), Mitigate: false}, creds, att)
		if err != nil {
			return 0, 0, err
		}
		for _, r := range res.Mitigations {
			n++
			switch r.ID {
			case 0:
				if r.Elapsed > max1 {
					max1 = r.Elapsed
				}
			case 1:
				if r.Elapsed > max2 {
					max2 = r.Elapsed
				}
			}
		}
	}
	if n == 0 || max1 == 0 || max2 == 0 {
		return 0, 0, fmt.Errorf("login: sampling produced no usable mitigation records")
	}
	return int64(max1) * 110 / 100, int64(max2) * 110 / 100, nil
}

// SamplePredictionsWarm is the warm-server variant of
// SamplePredictions: it runs the attempts sequentially on ONE
// persistent environment — like consecutive requests on a live server —
// discards the first (cold) attempt's records as warm-up, and returns
// 110% of each phase's maximum warm elapsed time. Predictions
// calibrated this way track steady-state request cost (the paper's
// modest 1.22× overhead) at the price of one misprediction on the cold
// first request, which depends only on public request position.
func (a *App) SamplePredictionsWarm(env hw.Env, creds []Credential, attempts []Attempt) (int64, int64, error) {
	if len(attempts) < 2 {
		return 0, 0, fmt.Errorf("login: warm sampling needs at least two attempts")
	}
	var max1, max2 uint64
	for i, att := range attempts {
		res, err := a.Run(RunOptions{Env: env, Mitigate: false}, creds, att)
		if err != nil {
			return 0, 0, err
		}
		if i == 0 {
			continue // cold warm-up run
		}
		for _, r := range res.Mitigations {
			switch r.ID {
			case 0:
				if r.Elapsed > max1 {
					max1 = r.Elapsed
				}
			case 1:
				if r.Elapsed > max2 {
					max2 = r.Elapsed
				}
			}
		}
	}
	if max1 == 0 || max2 == 0 {
		return 0, 0, fmt.Errorf("login: warm sampling produced no usable mitigation records")
	}
	return int64(max1) * 110 / 100, int64(max2) * 110 / 100, nil
}

// MakeCredentials generates n deterministic valid credentials.
func MakeCredentials(n int) []Credential {
	out := make([]Credential, n)
	for i := range out {
		out[i] = Credential{
			User: fmt.Sprintf("user-%03d", i),
			Pass: fmt.Sprintf("hunter%03d", i*7),
		}
	}
	return out
}

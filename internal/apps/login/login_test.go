package login

import (
	"testing"

	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/sem/full"
)

func small() Config { return Config{TableSize: 16, WorkFactor: 48} }

func buildSmall(t *testing.T) *App {
	t.Helper()
	app, err := Build(small(), lattice.TwoPoint())
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func flatEnv(a *App) func() hw.Env {
	return func() hw.Env { return hw.NewFlat(a.Lat, 2) }
}

func TestBuildTypechecks(t *testing.T) {
	app := buildSmall(t)
	if app.Prog.NumMitigates != 2 {
		t.Errorf("NumMitigates = %d, want 2", app.Prog.NumMitigates)
	}
	if _, err := Build(DefaultConfig(), lattice.TwoPoint()); err != nil {
		t.Errorf("default config: %v", err)
	}
}

func TestDigestDeterministicAndPositive(t *testing.T) {
	a := Digest("alice")
	b := Digest("alice")
	c := Digest("bob")
	if a != b {
		t.Error("digest must be deterministic")
	}
	if a == c {
		t.Error("distinct names should (almost surely) hash apart")
	}
	if a < 0 || c < 0 {
		t.Error("digests are masked positive")
	}
}

func TestLoginSemantics(t *testing.T) {
	app := buildSmall(t)
	creds := MakeCredentials(4)
	run := func(att Attempt) (valid bool) {
		res, err := app.Run(RunOptions{Env: flatEnv(app)(), Mitigate: false, Pred1: 1, Pred2: 1}, creds, att)
		if err != nil {
			t.Fatal(err)
		}
		// state increments exactly on a fully valid login; read it from
		// the final trace... state is high and not directly dumped, so
		// check via the H-observable trace.
		for _, e := range res.Trace {
			if e.Var == "state" && e.Value == 1 {
				return true
			}
		}
		return false
	}
	if !run(Attempt{User: creds[2].User, Pass: creds[2].Pass}) {
		t.Error("valid credentials should log in")
	}
	if run(Attempt{User: creds[2].User, Pass: "wrong"}) {
		t.Error("wrong password should fail")
	}
	if run(Attempt{User: "mallory", Pass: "x"}) {
		t.Error("unknown user should fail")
	}
}

func TestUnmitigatedTimingLeaksValidity(t *testing.T) {
	app := buildSmall(t)
	creds := MakeCredentials(8)
	timeOf := func(att Attempt) uint64 {
		res, err := app.Run(RunOptions{Env: flatEnv(app)(), Mitigate: false, Pred1: 1, Pred2: 1}, creds, att)
		if err != nil {
			t.Fatal(err)
		}
		tm, err := ResponseTime(res)
		if err != nil {
			t.Fatal(err)
		}
		return tm
	}
	valid := timeOf(Attempt{User: creds[0].User, Pass: creds[0].Pass})
	invalid := timeOf(Attempt{User: "nobody", Pass: "x"})
	if valid <= invalid {
		t.Errorf("valid login (%d) should take longer than invalid (%d) unmitigated", valid, invalid)
	}
	// Different valid usernames: different scan positions, different
	// times (the secondary leak the paper notes).
	v0 := timeOf(Attempt{User: creds[0].User, Pass: creds[0].Pass})
	v7 := timeOf(Attempt{User: creds[7].User, Pass: creds[7].Pass})
	if v0 == v7 {
		t.Error("scan position should affect unmitigated time")
	}
}

func TestMitigatedTimingIndependentOfSecrets(t *testing.T) {
	app := buildSmall(t)
	pred1, pred2 := int64(4096), int64(4096)
	timeOf := func(creds []Credential, att Attempt) uint64 {
		res, err := app.Run(RunOptions{Env: flatEnv(app)(), Mitigate: true, Pred1: pred1, Pred2: pred2}, creds, att)
		if err != nil {
			t.Fatal(err)
		}
		tm, err := ResponseTime(res)
		if err != nil {
			t.Fatal(err)
		}
		return tm
	}
	creds := MakeCredentials(8)
	att := Attempt{User: creds[3].User, Pass: creds[3].Pass}
	tValid := timeOf(creds, att)
	tInvalid := timeOf(creds, Attempt{User: "nobody", Pass: "x"})
	tFewer := timeOf(MakeCredentials(2), att) // att no longer valid
	if tValid != tInvalid || tValid != tFewer {
		t.Errorf("mitigated times differ: valid=%d invalid=%d fewer=%d", tValid, tInvalid, tFewer)
	}
}

func TestSamplePredictions(t *testing.T) {
	app := buildSmall(t)
	creds := MakeCredentials(6)
	attempts := []Attempt{
		{User: creds[0].User, Pass: creds[0].Pass},
		{User: creds[5].User, Pass: "bad"},
		{User: "ghost", Pass: "x"},
	}
	p1, p2, err := app.SamplePredictions(flatEnv(app), creds, attempts)
	if err != nil {
		t.Fatal(err)
	}
	if p1 <= 0 || p2 <= 0 {
		t.Errorf("predictions %d/%d should be positive", p1, p2)
	}
	// With sampled predictions, mitigated runs should rarely blow past
	// double the sampled value for in-distribution attempts.
	res, err := app.Run(RunOptions{Env: flatEnv(app)(), Mitigate: true, Pred1: p1, Pred2: p2},
		creds, attempts[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Mitigations {
		if r.Duration > uint64(4*(p1+p2)) {
			t.Errorf("mitigated duration %d far exceeds sampled prediction", r.Duration)
		}
	}
}

func TestSamplePredictionsWarm(t *testing.T) {
	app := buildSmall(t)
	creds := MakeCredentials(8)
	env := hw.NewPartitioned(app.Lat, hw.Table1Config())
	atts := []Attempt{
		{User: creds[0].User, Pass: creds[0].Pass}, // warm-up (discarded)
		{User: creds[7].User, Pass: "wrong"},       // full work
		{User: "ghost", Pass: "x"},                 // full scan
	}
	p1, p2, err := app.SamplePredictionsWarm(env, creds, atts)
	if err != nil {
		t.Fatal(err)
	}
	if p1 <= 0 || p2 <= 0 {
		t.Errorf("warm predictions %d/%d", p1, p2)
	}
	// Warm predictions are no larger than cold ones (warm bodies are
	// faster, and both get the 10% margin).
	cp1, cp2, err := app.SamplePredictions(func() hw.Env {
		return hw.NewPartitioned(app.Lat, hw.Table1Config())
	}, creds, atts[1:])
	if err != nil {
		t.Fatal(err)
	}
	if p1 > cp1 || p2 > cp2 {
		t.Errorf("warm (%d,%d) should not exceed cold (%d,%d)", p1, p2, cp1, cp2)
	}
	// Error paths.
	if _, _, err := app.SamplePredictionsWarm(env, creds, atts[:1]); err == nil {
		t.Error("warm sampling needs ≥2 attempts")
	}
	// Even all-invalid samples exercise both mitigates (phase 2 runs
	// its else branch), so sampling succeeds — with a small phase-2
	// prediction.
	ghostOnly := []Attempt{{User: "g1", Pass: "x"}, {User: "g2", Pass: "x"}}
	g1, g2, err := app.SamplePredictionsWarm(hw.NewFlat(app.Lat, 2), creds, ghostOnly)
	if err != nil {
		t.Fatal(err)
	}
	if g2 >= p2 {
		t.Errorf("invalid-only phase-2 prediction (%d) should be far below full-work (%d)", g2, p2)
	}
	_ = g1
}

func TestSetupRejectsOverflow(t *testing.T) {
	app := buildSmall(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for too many credentials")
		}
	}()
	res, _ := app.Run(RunOptions{Env: flatEnv(app)(), Pred1: 1, Pred2: 1},
		MakeCredentials(17), Attempt{})
	_ = res
}

func TestResponseTimeMissing(t *testing.T) {
	if _, err := ResponseTime(&full.Result{}); err == nil {
		t.Error("expected error for missing response")
	}
}

func TestMakeCredentialsDistinct(t *testing.T) {
	creds := MakeCredentials(50)
	seen := map[string]bool{}
	for _, c := range creds {
		if seen[c.User] {
			t.Fatalf("duplicate user %s", c.User)
		}
		seen[c.User] = true
	}
}

func TestRunOnPartitionedHardware(t *testing.T) {
	app, err := Build(small(), lattice.TwoPoint())
	if err != nil {
		t.Fatal(err)
	}
	env := hw.NewPartitioned(app.Lat, hw.Table1Config())
	creds := MakeCredentials(4)
	res, err := app.Run(RunOptions{Env: env, Mitigate: true, Pred1: 2048, Pred2: 2048},
		creds, Attempt{User: creds[0].User, Pass: creds[0].Pass})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResponseTime(res); err != nil {
		t.Fatal(err)
	}
	if res.Stats.L1DHits == 0 {
		t.Error("expected cache activity")
	}
}

package login

import (
	"os"
	"path/filepath"
	"testing"
)

// The browsable listing in testdata/login.tc must match the generated
// source exactly; regenerate with `go run ./internal/tools/gentestdata`.
func TestTestdataListingInSync(t *testing.T) {
	path := filepath.Join("..", "..", "..", "testdata", "login.tc")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing listing (run go run ./internal/tools/gentestdata): %v", err)
	}
	if got := Source(DefaultConfig()); got != string(want) {
		t.Error("testdata/login.tc is stale; run go run ./internal/tools/gentestdata")
	}
}

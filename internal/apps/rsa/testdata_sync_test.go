package rsa

import (
	"os"
	"path/filepath"
	"testing"
)

// The browsable listings in testdata/ must match the generated sources
// exactly; regenerate with `go run ./internal/tools/gentestdata`.
func TestTestdataListingsInSync(t *testing.T) {
	cases := map[string]Mode{
		"rsa.tc":        LanguageLevel,
		"rsa_system.tc": SystemLevel,
	}
	for name, mode := range cases {
		path := filepath.Join("..", "..", "..", "testdata", name)
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing listing (run go run ./internal/tools/gentestdata): %v", err)
		}
		if got := Source(DefaultConfig(), mode); got != string(want) {
			t.Errorf("testdata/%s is stale; run go run ./internal/tools/gentestdata", name)
		}
	}
}

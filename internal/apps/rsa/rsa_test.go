package rsa

import (
	"strings"
	"testing"

	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/sem/full"
)

func smallCfg() Config { return Config{MaxBlocks: 10, Modulus: 1000003} }

func buildMode(t *testing.T, mode Mode) *App {
	t.Helper()
	app, err := Build(smallCfg(), mode, lattice.TwoPoint())
	if err != nil {
		t.Fatalf("build %v: %v", mode, err)
	}
	return app
}

func flatEnv(lat lattice.Lattice) hw.Env { return hw.NewFlat(lat, 2) }

func TestBuildAllModes(t *testing.T) {
	for _, m := range []Mode{LanguageLevel, SystemLevel, Unmitigated} {
		buildMode(t, m)
	}
	if _, err := Build(DefaultConfig(), LanguageLevel, lattice.TwoPoint()); err != nil {
		t.Error(err)
	}
}

func TestModeString(t *testing.T) {
	if LanguageLevel.String() != "language-level" || SystemLevel.String() != "system-level" ||
		Unmitigated.String() != "unmitigated" {
		t.Error("mode names")
	}
	if !strings.Contains(Mode(9).String(), "9") {
		t.Error("unknown mode")
	}
}

// The interpreter's square-and-multiply must agree with an independent
// Go implementation of modular exponentiation.
func TestModexpCorrectness(t *testing.T) {
	app := buildMode(t, LanguageLevel)
	keys := []int64{1, 2, 3, 0x5, 0xABCD, 65537, 99991}
	msg := Message(1, 7)
	for _, key := range keys {
		res, err := app.Run(flatEnv(app.Res.Lat), key, msg, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		want := Reference(app.Cfg, key, msg[0])
		got := int64(-1)
		for _, e := range res.Trace {
			if e.Var == "result" {
				got = e.Value
			}
		}
		if got != want {
			t.Errorf("key %#x: result = %d, want %d", key, got, want)
		}
	}
}

func TestMessageDeterministic(t *testing.T) {
	a := Message(5, 1)
	b := Message(5, 1)
	c := Message(5, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should give same message")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
	if len(Message(0, 1)) != 0 {
		t.Error("empty message")
	}
}

// Unmitigated decryption time depends on the private key (the paper's
// Fig. 8 upper plot).
func TestUnmitigatedKeyDependentTiming(t *testing.T) {
	app := buildMode(t, Unmitigated)
	msg := Message(3, 42)
	timeOf := func(key int64) uint64 {
		res, err := app.Run(flatEnv(app.Res.Lat), key, msg, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		tm, err := ResponseTime(res)
		if err != nil {
			t.Fatal(err)
		}
		return tm
	}
	// Dense key (many multiplies) vs sparse key (few) of the same bit
	// length.
	dense := timeOf(0xFFFF)
	sparse := timeOf(0x8001)
	if dense <= sparse {
		t.Errorf("dense key (%d) should be slower than sparse (%d)", dense, sparse)
	}
}

// Mitigated decryption time is identical for different keys (Fig. 8
// lower plot: exactly constant).
func TestMitigatedKeyIndependentTiming(t *testing.T) {
	app := buildMode(t, LanguageLevel)
	msg := Message(4, 42)
	pred := int64(1 << 14)
	timeOf := func(key int64) uint64 {
		res, err := app.Run(flatEnv(app.Res.Lat), key, msg, pred, true)
		if err != nil {
			t.Fatal(err)
		}
		tm, err := ResponseTime(res)
		if err != nil {
			t.Fatal(err)
		}
		return tm
	}
	t1 := timeOf(0xFFFF)
	t2 := timeOf(0x8001)
	t3 := timeOf(0xBEEF)
	if t1 != t2 || t2 != t3 {
		t.Errorf("mitigated times differ: %d %d %d", t1, t2, t3)
	}
}

// Language-level mitigation scales with the public block count and
// beats system-level mitigation (Fig. 9's shape).
func TestLanguageBeatsSystemLevel(t *testing.T) {
	lang := buildMode(t, LanguageLevel)
	sys := buildMode(t, SystemLevel)
	key := int64(0xC0FFEE)

	perBlock, err := lang.SamplePrediction(func() hw.Env { return flatEnv(lang.Res.Lat) },
		[]int64{key}, [][]int64{Message(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	// System-level prediction sampled on a 1-block message, as a system
	// mitigator would calibrate on some observed run.
	whole, err := sys.SamplePrediction(func() hw.Env { return flatEnv(sys.Res.Lat) },
		[]int64{key}, [][]int64{Message(1, 1)})
	if err != nil {
		t.Fatal(err)
	}

	var prevLang, sumLang, sumSys uint64
	for blocks := 1; blocks <= 8; blocks++ {
		msg := Message(blocks, 9)
		lr, err := lang.Run(flatEnv(lang.Res.Lat), key, msg, perBlock, true)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := sys.Run(flatEnv(sys.Res.Lat), key, msg, whole, true)
		if err != nil {
			t.Fatal(err)
		}
		lt, _ := ResponseTime(lr)
		st, _ := ResponseTime(sr)
		sumLang += lt
		sumSys += st
		// At non-power-of-two block counts the system-level doubling
		// schedule over-pads well past the language-level time; at
		// powers of two the two can tie (within per-block overhead).
		switch blocks {
		case 3, 5, 6, 7:
			if float64(st) < 1.1*float64(lt) {
				t.Errorf("%d blocks: system-level (%d) should over-pad vs language-level (%d)",
					blocks, st, lt)
			}
		}
		if lt <= prevLang {
			t.Errorf("language-level time should grow with blocks: %d then %d", prevLang, lt)
		}
		prevLang = lt
	}
	if float64(sumSys) < 1.15*float64(sumLang) {
		t.Errorf("aggregate: system-level (%d) should cost ≥15%% more than language-level (%d)",
			sumSys, sumLang)
	}
}

func TestSystemLevelHidesBlockCountInSchedule(t *testing.T) {
	// System-level durations land on the doubling schedule: messages of
	// 3 and 4 blocks often cost the same padded time (over-padding).
	sys := buildMode(t, SystemLevel)
	key := int64(0xABC)
	timeOf := func(blocks int) uint64 {
		res, err := sys.Run(flatEnv(sys.Res.Lat), key, Message(blocks, 3), 1024, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Mitigations) != 1 {
			t.Fatalf("system-level should have exactly one mitigation, got %d", len(res.Mitigations))
		}
		return res.Mitigations[0].Duration
	}
	d1 := timeOf(1)
	d2 := timeOf(2)
	// Both on schedule {1024·2^k}.
	for _, d := range []uint64{d1, d2} {
		on := false
		for s := uint64(1024); s <= 1<<40; s *= 2 {
			if d == s {
				on = true
			}
		}
		if !on {
			t.Errorf("duration %d off the doubling schedule", d)
		}
	}
}

func TestSetupRejectsOverflow(t *testing.T) {
	app := buildMode(t, LanguageLevel)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	app.Run(flatEnv(app.Res.Lat), 1, Message(11, 1), 1, false)
}

func TestResponseTimeMissing(t *testing.T) {
	if _, err := ResponseTime(&full.Result{}); err == nil {
		t.Error("expected error")
	}
}

func TestRunOnTable1Hardware(t *testing.T) {
	app := buildMode(t, LanguageLevel)
	env := hw.NewPartitioned(app.Res.Lat, hw.Table1Config())
	res, err := app.Run(env, 0x10001, Message(2, 5), 1<<15, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResponseTime(res); err != nil {
		t.Fatal(err)
	}
}

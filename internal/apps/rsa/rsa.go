// Package rsa implements the paper's RSA decryption case study (§8.4).
//
// A multi-block message is decrypted with square-and-multiply modular
// exponentiation written in the timing-channel language. Only the
// exponentiation uses the private key, so only that code is high; the
// per-block pre/post-processing performs public assignments whose
// timing the adversary observes. Unmitigated, decryption time depends
// on the key's bit pattern (the Kocher/Brumley–Boneh channel); with
// each block's exponentiation wrapped in mitigate, the total time
// depends only on public data (message length).
//
// The package also builds the "system-level mitigation" variant used
// by Fig. 9: the entire decryption wrapped in a single mitigate, which
// cannot distinguish benign (public) timing variation due to message
// length from secret-dependent variation, and therefore over-pads.
package rsa

import (
	"fmt"
	"strings"

	"repro/internal/lang/ast"
	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/sem/full"
	"repro/internal/sem/mem"
	"repro/internal/types"
)

// Config sizes the RSA application.
type Config struct {
	// MaxBlocks is the capacity of the message buffer (public).
	MaxBlocks int
	// Modulus is the public RSA modulus (small, for the simulated
	// 32-bit-block variant; timing behaviour — the channel — is the
	// same as for real key sizes, just scaled).
	Modulus int64
}

// DefaultConfig uses a 10-block buffer like the paper's experiment and
// a small prime-product modulus.
func DefaultConfig() Config {
	return Config{MaxBlocks: 10, Modulus: 2147483647} // 2^31 − 1
}

// Mode selects which program variant to build.
type Mode int

const (
	// LanguageLevel wraps each block's exponentiation in its own
	// mitigate (the paper's approach).
	LanguageLevel Mode = iota
	// SystemLevel wraps the whole decryption in a single mitigate
	// (the black-box baseline of Fig. 9).
	SystemLevel
	// Unmitigated runs with mitigation disabled at run time; the
	// program is the LanguageLevel one (its mitigates become
	// measurement probes).
	Unmitigated
)

func (m Mode) String() string {
	switch m {
	case LanguageLevel:
		return "language-level"
	case SystemLevel:
		return "system-level"
	case Unmitigated:
		return "unmitigated"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Source returns the decryption program for a mode.
func Source(cfg Config, mode Mode) string {
	var b strings.Builder
	fmt.Fprintf(&b, `// RSA decryption case study (paper §8.4), %s variant.
var nblocks : L;    // message length in blocks (public)
var pred : L;       // initial prediction (public)
array blocks[%d] : L; // ciphertext blocks (public)
var progress : L;   // low postprocess output per block
var response : L;
var key : H;        // private exponent (secret)
var result : H;
var acc : H;
var e : H;
var c : L;
var b : L;
var cs : H;         // block copy used inside system-level mitigation
var bs : H;         // block index used inside system-level mitigation

b := 0;
`, mode, cfg.MaxBlocks)

	// modexp expands the square-and-multiply body reading the current
	// ciphertext block from the named variable.
	modexp := func(blockVar string) string {
		return fmt.Sprintf(`        result := 1 [H,H];
        e := key [H,H];
        acc := %s %% %d [H,H];
        while (e > 0) [H,H] {
            if (e & 1) [H,H] {
                result := (result * acc) %% %d [H,H];
            } else {
                skip [H,H];
            }
            acc := (acc * acc) %% %d [H,H];
            e := e >> 1 [H,H];
        }
`, blockVar, cfg.Modulus, cfg.Modulus, cfg.Modulus)
	}

	switch mode {
	case SystemLevel:
		// One mitigate around the whole loop; no intermediate low
		// events (the black box emits only the final response). All
		// loop state inside is high: under a high read label, even the
		// public block index would taint low variables.
		b.WriteString("mitigate@0 (pred, H) [L,L] {\n")
		fmt.Fprintf(&b, `    bs := 0 [H,H];
    while (bs < nblocks) [H,H] {
        cs := blocks[bs] [H,H];
%s        bs := bs + 1 [H,H];
    }
`, modexp("cs"))
		b.WriteString("}\nresponse := 1;\n")
	default:
		// Per-block mitigation; pre/post-processing stays public and
		// emits observable low events.
		fmt.Fprintf(&b, `while (b < nblocks) [L,L] {
    c := blocks[b];        // preprocess (low)
    progress := b;         // observable low assignment
    mitigate@0 (pred, H) [L,L] {
%s    }
    progress := b + 1;     // postprocess (low)
    b := b + 1;
}
response := 1;
`, modexp("c"))
	}
	return b.String()
}

// App is a compiled RSA application.
type App struct {
	Cfg  Config
	Mode Mode
	Prog *ast.Program
	Res  *types.Result
}

// Build parses and type-checks the decryption program.
func Build(cfg Config, mode Mode, lat lattice.Lattice) (*App, error) {
	src := Source(cfg, mode)
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("rsa: parse: %w", err)
	}
	res, err := types.Check(prog, lat)
	if err != nil {
		return nil, fmt.Errorf("rsa: typecheck: %w", err)
	}
	return &App{Cfg: cfg, Mode: mode, Prog: prog, Res: res}, nil
}

// Message generates a deterministic ciphertext of n blocks.
func Message(n int, seed int64) []int64 {
	out := make([]int64, n)
	x := seed*2654435761 + 12345
	for i := range out {
		x = x*6364136223846793005 + 1442695040888963407
		v := x >> 16
		if v < 0 {
			v = -v
		}
		out[i] = v % 1000000007
	}
	return out
}

// Setup writes the message, key, and prediction into memory.
func (a *App) Setup(m *mem.Memory, key int64, message []int64, pred int64) {
	if len(message) > a.Cfg.MaxBlocks {
		panic(fmt.Sprintf("rsa: %d blocks exceed capacity %d", len(message), a.Cfg.MaxBlocks))
	}
	m.Set("key", key)
	m.Set("nblocks", int64(len(message)))
	m.Set("pred", pred)
	for i, blk := range message {
		m.SetEl("blocks", int64(i), blk)
	}
}

// Run decrypts one message and returns the full result. Mitigation is
// enabled unless the app was built in (or run as) Unmitigated mode.
func (a *App) Run(env hw.Env, key int64, message []int64, pred int64, mitigate bool) (*full.Result, error) {
	opts := full.Options{DisableMitigation: !mitigate}
	return full.Execute(a.Prog, a.Res, env, opts, func(m *mem.Memory) {
		a.Setup(m, key, message, pred)
	}, 50_000_000)
}

// ResponseTime returns the time of the final response event.
func ResponseTime(res *full.Result) (uint64, error) {
	for i := len(res.Trace) - 1; i >= 0; i-- {
		if res.Trace[i].Var == "response" {
			return res.Trace[i].Time, nil
		}
	}
	return 0, fmt.Errorf("rsa: no response event in trace")
}

// SampleElapsed measures the mitigate bodies' elapsed times with
// mitigation disabled over the given keys/messages, returning the
// average and the maximum (§8.2's sampling step).
func (a *App) SampleElapsed(newEnv func() hw.Env, keys []int64, messages [][]int64) (avg, max int64, err error) {
	var sum, n, mx uint64
	for _, key := range keys {
		for _, msg := range messages {
			res, err := a.Run(newEnv(), key, msg, 1, false)
			if err != nil {
				return 0, 0, err
			}
			for _, r := range res.Mitigations {
				sum += r.Elapsed
				n++
				if r.Elapsed > mx {
					mx = r.Elapsed
				}
			}
		}
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("rsa: sampling produced no mitigation records")
	}
	return int64(sum / n), int64(mx), nil
}

// SamplePrediction returns 110% of the maximum sampled body time — an
// initial prediction that avoids mispredictions for in-distribution
// inputs, which is what makes mitigated decryption time exactly
// constant (Fig. 8). Sample with a dense key to cover the worst case.
func (a *App) SamplePrediction(newEnv func() hw.Env, keys []int64, messages [][]int64) (int64, error) {
	_, max, err := a.SampleElapsed(newEnv, keys, messages)
	if err != nil {
		return 0, err
	}
	return max * 110 / 100, nil
}

// Reference computes the expected plaintext of one block in Go, for
// validating the interpreter's modexp against an independent
// implementation.
func Reference(cfg Config, key, block int64) int64 {
	result := int64(1)
	acc := block % cfg.Modulus
	e := key
	for e > 0 {
		if e&1 == 1 {
			result = (result * acc) % cfg.Modulus
		}
		acc = (acc * acc) % cfg.Modulus
		e >>= 1
	}
	return result
}

package certify

import (
	"context"
	"fmt"

	"repro/internal/exec"
	"repro/internal/machine/hw"
	"repro/internal/sem/mem"
	"repro/internal/server"
	"repro/internal/session"
)

// PoolTarget binds certification to a server.Pool fronted by the
// per-tenant session manager: every probe is one tenant request —
// Begin (admission), HandleWith against the tenant's persistent
// mitigation state, Commit (leakage accounting) — so queueing and the
// session layer's bookkeeping are inside the attack surface, and the
// reported bound is exactly the session's `leakage_bits`.
type PoolTarget struct {
	w        *Workload
	cfg      TargetConfig
	pool     *server.Pool
	mgr      *session.Manager
	tenant   string
	reported float64
}

// NewPoolTarget builds the pool+sessions binding. The pool runs one
// worker: a certification target is one adversary probing serially,
// and a single shard keeps the warm-cache sequence deterministic.
func NewPoolTarget(w *Workload, cfg TargetConfig) (*PoolTarget, error) {
	cfg = cfg.withDefaults()
	env, err := hw.NewEnv(cfg.Hardware, w.Lat, w.Config())
	if err != nil {
		return nil, err
	}
	maxSteps := w.MaxSteps
	if maxSteps == 0 {
		maxSteps = defaultMaxSteps
	}
	pool, err := server.NewPool(w.Prog, w.Res, server.PoolOptions{
		Workers: 1,
		Options: server.Options{
			Env:               env,
			Engine:            cfg.Engine,
			DisableMitigation: !cfg.Mitigated,
			OptLevel:          cfg.OptLevel,
			OptSet:            cfg.OptSet,
			Limits:            exec.Limits{MaxSteps: maxSteps},
		},
	})
	if err != nil {
		return nil, err
	}
	mgr, err := session.NewManager(session.Options{Lat: w.Lat})
	if err != nil {
		pool.Close()
		return nil, err
	}
	return &PoolTarget{w: w, cfg: cfg, pool: pool, mgr: mgr, tenant: "adversary"}, nil
}

// Name implements Target.
func (t *PoolTarget) Name() string {
	return fmt.Sprintf("pool/%s/%s", t.cfg.label(), t.w.Name)
}

// Secrets implements Target.
func (t *PoolTarget) Secrets() int { return t.w.N }

// Probe implements Target.
func (t *PoolTarget) Probe(ctx context.Context, secret int) (uint64, error) {
	tk, err := t.mgr.Begin(t.tenant)
	if err != nil {
		return 0, err
	}
	resp, err := t.pool.HandleWith(ctx, func(m *mem.Memory) { t.w.Set(secret, m) }, tk.Mit())
	if err != nil {
		tk.Abort()
		return 0, err
	}
	info := tk.Commit(resp.Time, len(resp.Mitigations))
	t.reported = info.SpentBits
	tm := resp.Time
	server.ReleaseResponse(resp)
	return tm, nil
}

// ReportedBits implements Target: the session layer's own account.
func (t *PoolTarget) ReportedBits() float64 {
	if !t.cfg.Mitigated {
		return 0
	}
	return t.reported
}

// Close implements Target.
func (t *PoolTarget) Close() error {
	t.pool.Close()
	return nil
}

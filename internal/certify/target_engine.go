package certify

import (
	"context"
	"fmt"

	"repro/internal/exec"
	"repro/internal/leakage"
	"repro/internal/machine/hw"
	"repro/internal/mitigation"
	"repro/internal/sem/mem"
)

// TargetConfig selects one stack configuration to certify. The same
// struct configures all three bindings; fields a binding cannot honor
// (OptLevel on the tree engine, say) are ignored the same way the
// underlying layers ignore them.
type TargetConfig struct {
	// Engine is the registered engine name ("tree", "vm"); default
	// "tree".
	Engine string
	// OptLevel/OptSet select the VM optimization tier, as in
	// exec.Options.
	OptLevel int
	OptSet   bool
	// Hardware is the registered machine-design name; default
	// "partitioned".
	Hardware string
	// Mitigated runs the program with predictive mitigation; when
	// false the target claims NO §7 bound (ReportedBits = 0) — the
	// paper's guarantee covers mitigated execution only, which is what
	// makes unmitigated configurations the positive control.
	Mitigated bool
}

func (c TargetConfig) withDefaults() TargetConfig {
	if c.Engine == "" {
		c.Engine = "tree"
	}
	if c.Hardware == "" {
		c.Hardware = "partitioned"
	}
	return c
}

// label renders the configuration for target names.
func (c TargetConfig) label() string {
	mit := "unmitigated"
	if c.Mitigated {
		mit = "mitigated"
	}
	eng := c.Engine
	if c.Engine == "vm" && c.OptSet {
		eng = fmt.Sprintf("vm-opt%d", c.OptLevel)
	}
	return fmt.Sprintf("%s/%s/%s", eng, c.Hardware, mit)
}

// defaultMaxSteps bounds one probe run; generous for every built-in
// workload.
const defaultMaxSteps = 10_000_000

// EngineTarget binds certification directly to an exec.Engine: the
// adversary is a local caller sharing the engine's machine
// environment (caches stay warm across probes) and its persistent
// mitigation state (epochs advance), exactly like a serial server.
type EngineTarget struct {
	w    *Workload
	cfg  TargetConfig
	env  hw.Env
	eng  exec.Engine
	mit  *mitigation.State
	cumK int
	cumT uint64
}

// NewEngineTarget builds the direct-engine binding.
func NewEngineTarget(w *Workload, cfg TargetConfig) (*EngineTarget, error) {
	cfg = cfg.withDefaults()
	env, err := hw.NewEnv(cfg.Hardware, w.Lat, w.Config())
	if err != nil {
		return nil, err
	}
	maxSteps := w.MaxSteps
	if maxSteps == 0 {
		maxSteps = defaultMaxSteps
	}
	eng, err := exec.NewEngine(cfg.Engine, w.Prog, w.Res, env, exec.Options{
		DisableMitigation: !cfg.Mitigated,
		OptLevel:          cfg.OptLevel,
		OptSet:            cfg.OptSet,
		Limits:            exec.Limits{MaxSteps: maxSteps},
	})
	if err != nil {
		return nil, err
	}
	return &EngineTarget{
		w:   w,
		cfg: cfg,
		env: env,
		eng: eng,
		mit: mitigation.NewState(w.Lat, nil, mitigation.PerLevel),
	}, nil
}

// Name implements Target.
func (t *EngineTarget) Name() string {
	return fmt.Sprintf("engine/%s/%s", t.cfg.label(), t.w.Name)
}

// Secrets implements Target.
func (t *EngineTarget) Secrets() int { return t.w.N }

// Probe implements Target.
func (t *EngineTarget) Probe(ctx context.Context, secret int) (uint64, error) {
	res, err := t.eng.Run(ctx, exec.Request{
		Setup: func(m *mem.Memory) { t.w.Set(secret, m) },
		Mit:   t.mit,
	})
	if err != nil {
		return 0, err
	}
	t.cumK += len(res.Mitigations)
	t.cumT += res.Clock
	return res.Clock, nil
}

// ReportedBits implements Target: the same conservative account the
// session layer keeps — |L↑| = Lat.Size()−1 (everything above bottom),
// K every completed mitigation record, T the cumulative clock.
func (t *EngineTarget) ReportedBits() float64 {
	if !t.cfg.Mitigated {
		return 0
	}
	return leakage.Bound(t.w.Lat.Size()-1, t.cumK, t.cumT)
}

// SharedEnv implements Coresident: a direct engine caller shares the
// victim's hardware, so cache-probing adversaries apply.
func (t *EngineTarget) SharedEnv() hw.Env { return t.env }

// HWConfig implements Coresident.
func (t *EngineTarget) HWConfig() hw.Config { return t.w.Config() }

// Close implements Target.
func (t *EngineTarget) Close() error { return nil }

package certify

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/exec"
	"repro/internal/machine/hw"
	"repro/internal/server"
	"repro/internal/session"
	"repro/internal/transport"
	"repro/internal/transport/client"
	"repro/internal/transport/wire"
)

// HTTPTarget binds certification to the full network stack: the
// workload is served by a real loopback HTTP service (pool, sessions,
// transport handler) and probed through the client SDK, so JSON
// marshaling, admission, retries, and the wire's leakage_bits field
// are all inside the attack surface. The reported bound is what the
// server told the client, not an in-process shortcut. Only workloads
// with wire inputs (Workload.Inputs non-nil) can bind here.
type HTTPTarget struct {
	w        *Workload
	cfg      TargetConfig
	pool     *server.Pool
	handler  *transport.Handler
	srv      *http.Server
	client   *client.Client
	tenant   string
	reported float64
}

// NewHTTPTarget builds the HTTP binding, starting a loopback service.
func NewHTTPTarget(w *Workload, cfg TargetConfig) (*HTTPTarget, error) {
	if w.Inputs == nil {
		return nil, fmt.Errorf("certify: workload %s has no wire inputs; it cannot bind over HTTP", w.Name)
	}
	cfg = cfg.withDefaults()
	env, err := hw.NewEnv(cfg.Hardware, w.Lat, w.Config())
	if err != nil {
		return nil, err
	}
	maxSteps := w.MaxSteps
	if maxSteps == 0 {
		maxSteps = defaultMaxSteps
	}
	pool, err := server.NewPool(w.Prog, w.Res, server.PoolOptions{
		Workers: 1,
		Options: server.Options{
			Env:               env,
			Engine:            cfg.Engine,
			DisableMitigation: !cfg.Mitigated,
			OptLevel:          cfg.OptLevel,
			OptSet:            cfg.OptSet,
			Limits:            exec.Limits{MaxSteps: maxSteps},
		},
	})
	if err != nil {
		return nil, err
	}
	mgr, err := session.NewManager(session.Options{Lat: w.Lat})
	if err != nil {
		pool.Close()
		return nil, err
	}
	h, err := transport.New(transport.Options{Pool: pool, Prog: w.Prog, Sessions: mgr})
	if err != nil {
		pool.Close()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		pool.Close()
		return nil, err
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(ln)
	t := &HTTPTarget{
		w:       w,
		cfg:     cfg,
		pool:    pool,
		handler: h,
		srv:     hs,
		tenant:  "adversary",
	}
	t.client = client.New("http://"+ln.Addr().String(), client.Options{Tenant: t.tenant})
	return t, nil
}

// Name implements Target.
func (t *HTTPTarget) Name() string {
	return fmt.Sprintf("http/%s/%s", t.cfg.label(), t.w.Name)
}

// Secrets implements Target.
func (t *HTTPTarget) Secrets() int { return t.w.N }

// Probe implements Target: one tenant request over the wire. The
// observation is the SIMULATED response time the service reports —
// the deterministic clock certification reasons about — and the
// reported bound is the response's leakage_bits.
func (t *HTTPTarget) Probe(ctx context.Context, secret int) (uint64, error) {
	resp, err := t.client.Run(ctx, wire.RunRequest{Inputs: t.w.Inputs(secret)})
	if err != nil {
		return 0, err
	}
	t.reported = resp.LeakageBits
	return resp.Time, nil
}

// ReportedBits implements Target.
func (t *HTTPTarget) ReportedBits() float64 {
	if !t.cfg.Mitigated {
		return 0
	}
	return t.reported
}

// Close implements Target: drain the handler, stop the listener,
// close the pool.
func (t *HTTPTarget) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := t.handler.Shutdown(ctx)
	if e := t.srv.Shutdown(ctx); err == nil {
		err = e
	}
	return err
}

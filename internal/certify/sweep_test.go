package certify

import (
	"context"
	"strings"
	"testing"
)

// TestCertifySweepSmoke is the CI certification gate (`make
// certify-smoke`): the quick slice of the matrix must certify every
// mitigated+partitioned configuration and measurably leak on at least
// one unmitigated baseline, and the bench rendering must be a pure
// function of the seed.
func TestCertifySweepSmoke(t *testing.T) {
	ctx := context.Background()
	rows, err := Sweep(ctx, SweepOptions{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("quick sweep has %d rows, want 9", len(rows))
	}
	if err := Check(rows); err != nil {
		t.Fatal(err)
	}

	bindings := map[string]bool{}
	for _, r := range rows {
		bindings[r.Binding] = true
		if r.Result == nil {
			t.Fatalf("%s: nil result", r.Label())
		}
	}
	for _, b := range []string{"engine", "pool", "http"} {
		if !bindings[b] {
			t.Errorf("quick sweep must exercise the %s binding", b)
		}
	}

	lines := BenchLines(rows)
	if len(lines) != len(rows) {
		t.Fatalf("%d bench lines for %d rows", len(lines), len(rows))
	}
	for i, l := range lines {
		if !strings.HasPrefix(l, "BenchmarkCertify/"+rows[i].Label()+"\t") {
			t.Errorf("line %d does not carry its row label: %s", i, l)
		}
		if !strings.Contains(l, "measured_bits") || !strings.Contains(l, "certified") {
			t.Errorf("line %d missing metrics: %s", i, l)
		}
	}

	// Same seed ⇒ byte-identical bench lines (the BENCH_certify.json
	// determinism claim, minus the JSON encoder, which is itself
	// deterministic).
	again, err := Sweep(ctx, SweepOptions{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	relines := BenchLines(again)
	if strings.Join(lines, "\n") != strings.Join(relines, "\n") {
		t.Errorf("same seed produced different bench lines:\n%s\n---\n%s",
			strings.Join(lines, "\n"), strings.Join(relines, "\n"))
	}
}

// TestSweepCheckFailures exercises Check's two failure directions on
// synthetic rows.
func TestSweepCheckFailures(t *testing.T) {
	certified := Row{
		Binding: "engine", Workload: "w",
		Config: TargetConfig{Engine: "tree", Hardware: "partitioned", Mitigated: true},
		Result: &Result{Certified: true},
	}
	leaky := Row{
		Binding: "engine", Workload: "w",
		Config: TargetConfig{Engine: "tree", Hardware: "partitioned", Mitigated: false},
		Result: &Result{MeasuredBits: 2},
	}
	if err := Check([]Row{certified, leaky}); err != nil {
		t.Errorf("healthy rows should pass: %v", err)
	}

	broken := certified
	broken.Result = &Result{Certified: false, UpperBits: 5, ReportedBits: 1}
	if err := Check([]Row{broken, leaky}); err == nil {
		t.Error("uncertified mitigated row must fail Check")
	}

	quiet := leaky
	quiet.Result = &Result{MeasuredBits: 0}
	if err := Check([]Row{certified, quiet}); err == nil {
		t.Error("missing positive control must fail Check")
	} else if !strings.Contains(err.Error(), "positive control") {
		t.Errorf("unexpected failure message: %v", err)
	}
}

func TestRowLabel(t *testing.T) {
	r := Row{
		Binding: "http", Workload: "sleep",
		Config: TargetConfig{Engine: "vm", OptLevel: 2, OptSet: true, Hardware: "partitioned", Mitigated: true},
	}
	want := "bind=http/workload=sleep/engine=vm-opt2/hw=partitioned/mit=on"
	if got := r.Label(); got != want {
		t.Errorf("Label = %q, want %q", got, want)
	}
	r.Config = TargetConfig{Engine: "tree", Hardware: "nopar"}
	want = "bind=http/workload=sleep/engine=tree/hw=nopar/mit=off"
	if got := r.Label(); got != want {
		t.Errorf("Label = %q, want %q", got, want)
	}
}

package certify

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/fault"
)

// SweepOptions configure the certification matrix.
type SweepOptions struct {
	// Seed drives every row's adversaries; equal seeds replay the
	// whole sweep bit-for-bit.
	Seed int64
	// Quick selects the smoke slice: every binding and both verdict
	// polarities, a few seconds of work. The full matrix crosses
	// {tree, vm×opt0/2} × {partitioned, nopar} × {mitigated,
	// unmitigated} × every workload.
	Quick bool
}

// Row is one certified configuration of the sweep.
type Row struct {
	// Binding is the target layer: "engine", "pool", or "http".
	Binding string
	// Workload names the certified workload.
	Workload string
	// Config is the stack configuration.
	Config TargetConfig
	// Result is the certification report.
	Result *Result
}

// Label renders the row's stable identity (also the benchmark name
// suffix in BENCH_certify.json).
func (r Row) Label() string {
	opt := r.Config.Engine
	if r.Config.Engine == "vm" && r.Config.OptSet {
		opt = fmt.Sprintf("vm-opt%d", r.Config.OptLevel)
	}
	mit := "off"
	if r.Config.Mitigated {
		mit = "on"
	}
	return fmt.Sprintf("bind=%s/workload=%s/engine=%s/hw=%s/mit=%s",
		r.Binding, r.Workload, opt, r.Config.Hardware, mit)
}

// plan is one row before execution.
type plan struct {
	binding string
	w       *Workload
	cfg     TargetConfig
}

// Sweep runs the certification matrix and returns one row per
// configuration, in a stable order.
func Sweep(ctx context.Context, o SweepOptions) ([]Row, error) {
	login, err := LoginWorkload(8)
	if err != nil {
		return nil, err
	}
	sleep, err := SleepWorkload(8)
	if err != nil {
		return nil, err
	}
	progs, err := CorpusWorkloads()
	if err != nil {
		return nil, err
	}

	var plans []plan
	engCfg := func(engine string, opt int, hwName string, mit bool) TargetConfig {
		return TargetConfig{Engine: engine, OptLevel: opt, OptSet: engine == "vm", Hardware: hwName, Mitigated: mit}
	}
	if o.Quick {
		plans = []plan{
			{"engine", login, engCfg("tree", 0, "partitioned", true)},
			{"engine", login, engCfg("vm", 2, "partitioned", true)},
			{"engine", login, engCfg("vm", 2, "partitioned", false)},
			{"engine", sleep, engCfg("vm", 2, "partitioned", true)},
			{"engine", progs[0], engCfg("vm", 2, "partitioned", true)},
			{"engine", progs[0], engCfg("vm", 2, "partitioned", false)},
			{"pool", sleep, engCfg("tree", 0, "partitioned", true)},
			{"pool", sleep, engCfg("tree", 0, "partitioned", false)},
			{"http", sleep, engCfg("vm", 2, "partitioned", true)},
		}
	} else {
		rsa, err := RSAWorkload(nil)
		if err != nil {
			return nil, err
		}
		workloads := append([]*Workload{login, rsa, sleep}, progs...)
		engines := []struct {
			name string
			opt  int
		}{{"tree", 0}, {"vm", 0}, {"vm", 2}}
		for _, w := range workloads {
			for _, e := range engines {
				for _, hwName := range []string{"partitioned", "nopar"} {
					for _, mit := range []bool{true, false} {
						plans = append(plans, plan{"engine", w, engCfg(e.name, e.opt, hwName, mit)})
					}
				}
			}
		}
		for _, e := range []string{"tree", "vm"} {
			for _, mit := range []bool{true, false} {
				plans = append(plans, plan{"pool", sleep, engCfg(e, 2, "partitioned", mit)})
			}
		}
		for _, mit := range []bool{true, false} {
			plans = append(plans, plan{"http", sleep, engCfg("vm", 2, "partitioned", mit)})
		}
	}

	rows := make([]Row, 0, len(plans))
	for i, p := range plans {
		var (
			t   Target
			err error
		)
		switch p.binding {
		case "engine":
			t, err = NewEngineTarget(p.w, p.cfg)
		case "pool":
			t, err = NewPoolTarget(p.w, p.cfg)
		case "http":
			t, err = NewHTTPTarget(p.w, p.cfg)
		default:
			err = fmt.Errorf("certify: unknown binding %q", p.binding)
		}
		if err != nil {
			return nil, err
		}
		// Each row's adversaries draw from an independent stream
		// derived from (sweep seed, row index), so reordering one row
		// cannot perturb another.
		res, cerr := Certify(ctx, t, Options{Seed: int64(fault.Mix64(uint64(o.Seed), uint64(i+1)) >> 1)})
		if closeErr := t.Close(); cerr == nil {
			cerr = closeErr
		}
		if cerr != nil {
			return nil, fmt.Errorf("certify: row %s: %w", p.binding+"/"+p.w.Name, cerr)
		}
		rows = append(rows, Row{Binding: p.binding, Workload: p.w.Name, Config: p.cfg, Result: res})
	}
	return rows, nil
}

// Check asserts the sweep's two acceptance claims: every mitigated
// configuration on partitioned hardware certifies (measured upper
// confidence bound ≤ reported §7 bound), and at least one unmitigated
// baseline measurably leaks ≥ 1 bit — the positive control showing
// the estimators detect real channels.
func Check(rows []Row) error {
	var failures []string
	leaked := false
	for _, r := range rows {
		if r.Config.Mitigated && r.Config.Hardware == "partitioned" && !r.Result.Certified {
			failures = append(failures,
				fmt.Sprintf("%s: upper %.3f bits exceeds reported %.3f", r.Label(), r.Result.UpperBits, r.Result.ReportedBits))
		}
		if !r.Config.Mitigated && r.Result.MeasuredBits >= 1 {
			leaked = true
		}
	}
	if !leaked {
		failures = append(failures, "positive control failed: no unmitigated baseline measured ≥ 1 bit")
	}
	if len(failures) > 0 {
		return fmt.Errorf("certification failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// BenchLines renders the rows in `go test -bench` format so
// internal/tools/benchjson can parse them into BENCH_certify.json.
// Every metric is a deterministic function of the sweep seed (no
// wall-clock units appear), so equal seeds yield byte-identical
// output — and therefore a byte-identical JSON record.
func BenchLines(rows []Row) []string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		certified := 0
		if r.Result.Certified {
			certified = 1
		}
		out = append(out, fmt.Sprintf(
			"BenchmarkCertify/%s\t%d\t%.4f measured_bits\t%.4f upper_bits\t%.4f reported_bits\t%.4f secret_bits\t%d certified",
			r.Label(), r.Result.Probes, r.Result.MeasuredBits, r.Result.UpperBits,
			r.Result.ReportedBits, r.Result.SecretBits, certified))
	}
	return out
}

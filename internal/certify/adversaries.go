package certify

import (
	"context"
	"fmt"
	"math"
)

// warmPass probes every secret once in index order, discarding the
// observations. Every adversary starts with one: the first touch of a
// cold cache (and the first misprediction of a fresh mitigation
// schedule) varies with public request position, not the secret, and a
// real attacker discards it the same way.
func warmPass(ctx context.Context, t Target) (int, error) {
	n := t.Secrets()
	for i := 0; i < n; i++ {
		if _, err := t.Probe(ctx, i); err != nil {
			return i, err
		}
	}
	return n, nil
}

// Exhaustive is the exhaustive-input distinguisher: it probes every
// secret Rounds times and partitions the secret space by observed time
// vector. The information extracted is exact for this deterministic
// channel: H(secret) − Σ (|c|/N)·log2|c| over the classes c — log2 N
// when every secret times differently, 0 when the channel is flat.
type Exhaustive struct {
	// Rounds is the number of recorded passes over the secret space
	// (after the discarded warm-up pass); default 2.
	Rounds int
}

// Name implements Adversary.
func (e *Exhaustive) Name() string { return "exhaustive" }

// Mount implements Adversary.
func (e *Exhaustive) Mount(ctx context.Context, t Target, rng *RNG) (Attack, error) {
	rounds := e.Rounds
	if rounds <= 0 {
		rounds = 2
	}
	n := t.Secrets()
	probes, err := warmPass(ctx, t)
	if err != nil {
		return Attack{}, err
	}
	vectors := make([][]uint64, n)
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			tm, err := t.Probe(ctx, i)
			if err != nil {
				return Attack{}, err
			}
			vectors[i] = append(vectors[i], tm)
			probes++
		}
	}
	// Partition by vector equality; class sizes give the expected
	// posterior entropy under a uniform prior.
	classes := map[string]int{}
	for _, v := range vectors {
		classes[fmt.Sprint(v)]++
	}
	posterior := 0.0
	for _, size := range classes {
		posterior += float64(size) / float64(n) * math.Log2(float64(size))
	}
	bits := math.Log2(float64(n)) - posterior
	return Attack{
		Adversary: e.Name(),
		Probes:    probes,
		Bits:      bits,
		Upper:     bits,
		Detail:    fmt.Sprintf("%d timing classes over %d secrets", len(classes), n),
	}, nil
}

// BinarySearch is the adaptive attacker: it plants a secret, observes
// the victim's time, then probes candidate secrets in bisection order
// to find which are consistent with the observation. It adapts its
// probe budget to the channel — if the first ⌈log2 N⌉+1 bisection
// probes all match, it declares the channel flat and stops; otherwise
// it completes the scan and reports log2(N/|survivors|) bits (how far
// the observation narrowed the secret space).
type BinarySearch struct {
	// Planted selects the victim's secret; negative draws it from the
	// adversary's rng.
	Planted int
}

// NewBinarySearch returns the default configuration (random plant).
func NewBinarySearch() *BinarySearch { return &BinarySearch{Planted: -1} }

// Name implements Adversary.
func (b *BinarySearch) Name() string { return "binary-search" }

// Mount implements Adversary.
func (b *BinarySearch) Mount(ctx context.Context, t Target, rng *RNG) (Attack, error) {
	n := t.Secrets()
	planted := b.Planted
	if planted < 0 || planted >= n {
		planted = rng.Intn(n)
	}
	probes, err := warmPass(ctx, t)
	if err != nil {
		return Attack{}, err
	}
	target, err := t.Probe(ctx, planted)
	if err != nil {
		return Attack{}, err
	}
	probes++

	order := bisectionOrder(n)
	survivors := 0
	flatAfter := 0
	for i := range order {
		flatAfter = i + 1
		if i > bitsCeil(n) && survivors == i {
			// Every probe so far matched the victim: consistent with a
			// flat channel, so stop spending probes.
			survivors = n
			break
		}
		tm, err := t.Probe(ctx, order[i])
		if err != nil {
			return Attack{}, err
		}
		probes++
		if tm == target {
			survivors++
		}
	}
	if survivors == 0 {
		// The planted secret's own probe mismatched its earlier
		// observation (history-dependent machine state); the attack
		// learned the observation is unstable, not the secret.
		survivors = n
	}
	bits := math.Log2(float64(n) / float64(survivors))
	return Attack{
		Adversary: b.Name(),
		Probes:    probes,
		Bits:      bits,
		Upper:     bits,
		Detail:    fmt.Sprintf("planted %d: %d of %d candidates consistent after %d adaptive probes", planted, survivors, n, flatAfter),
	}, nil
}

// bisectionOrder lists 0..n-1 midpoint-first: the whole range's
// midpoint, then each half's, breadth-first — the probe order of a
// binary search that does not yet know which half the secret is in.
func bisectionOrder(n int) []int {
	out := make([]int, 0, n)
	type span struct{ lo, hi int }
	queue := []span{{0, n}}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if s.lo >= s.hi {
			continue
		}
		mid := (s.lo + s.hi) / 2
		out = append(out, mid)
		queue = append(queue, span{s.lo, mid}, span{mid + 1, s.hi})
	}
	return out
}

func bitsCeil(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

// MIEstimator samples the channel — Rounds passes over the secret
// space in rng-shuffled order — and estimates I(secret; time) with the
// Miller–Madow-corrected plug-in estimator plus a deterministic
// bootstrap upper confidence bound (see EstimateMI). This is the
// statistical workhorse: unlike the distinguishers it keeps working
// when timing is noisy, and its Upper is what certification holds
// against the reported §7 bound.
type MIEstimator struct {
	// Rounds is the number of recorded sampling passes; default 4.
	Rounds int
	// Estimator tunes the bootstrap; zero values take the defaults.
	Estimator EstimatorOptions
}

// Name implements Adversary.
func (m *MIEstimator) Name() string { return "mi-estimator" }

// Mount implements Adversary.
func (m *MIEstimator) Mount(ctx context.Context, t Target, rng *RNG) (Attack, error) {
	rounds := m.Rounds
	if rounds <= 0 {
		rounds = 4
	}
	n := t.Secrets()
	probes, err := warmPass(ctx, t)
	if err != nil {
		return Attack{}, err
	}
	secrets := make([]int, 0, rounds*n)
	times := make([]uint64, 0, rounds*n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for r := 0; r < rounds; r++ {
		rng.Shuffle(order)
		for _, i := range order {
			tm, err := t.Probe(ctx, i)
			if err != nil {
				return Attack{}, err
			}
			secrets = append(secrets, i)
			times = append(times, tm)
			probes++
		}
	}
	mi := EstimateMI(secrets, times, m.Estimator, rng)
	return Attack{
		Adversary: m.Name(),
		Probes:    probes,
		Bits:      mi.Bits,
		Upper:     mi.Upper,
		Detail:    fmt.Sprintf("%d samples: plugin %.3f, corrected %.3f, upper %.3f bits", mi.N, mi.Plugin, mi.Bits, mi.Upper),
	}, nil
}

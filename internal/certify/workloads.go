package certify

import (
	"fmt"

	"repro/internal/apps/login"
	"repro/internal/apps/rsa"
	"repro/internal/lang/ast"
	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/progen"
	"repro/internal/sem/mem"
	"repro/internal/types"
)

// Workload is a program plus a secret space: Set installs secret i
// into a machine memory before a run, and Inputs (when non-nil) gives
// the same secret as wire-schema scalar inputs so the workload can
// also be driven through the HTTP transport. The case-study apps set
// arrays (credential tables, message blocks), which the wire schema
// cannot carry, so they bind in-process only.
type Workload struct {
	// Name identifies the workload in reports.
	Name string
	// Prog and Res are the type-checked program; Lat its lattice.
	Prog *ast.Program
	Res  *types.Result
	Lat  lattice.Lattice
	// N is the secret-space size.
	N int
	// Set installs secret index i into a run's initial memory.
	Set func(secret int, m *mem.Memory)
	// Inputs, when non-nil, maps secret index i to wire inputs — the
	// workload is then certifiable through the HTTP binding too.
	Inputs func(secret int) map[string]int64
	// HW, when non-nil, overrides the hardware geometry (default
	// Table1).
	HW func() hw.Config
	// MaxSteps bounds each probe run; 0 takes the target default.
	MaxSteps int
}

// Config returns the workload's hardware geometry.
func (w *Workload) Config() hw.Config {
	if w.HW != nil {
		return w.HW()
	}
	return hw.Table1Config()
}

// LoginWorkload builds the §8.3 login case study as a certification
// workload. The secret is the position of the probed user's credential
// in the table (the rest of the table is decoys): the unmitigated
// early-exit username scan makes response time grow with that
// position, so an attacker distinguishes all n positions — the
// Bortz–Boneh channel in its sharpest form. Predictions are sampled
// over the worst case (§8.2) so the mitigated workload pads every
// probe to the same time.
func LoginWorkload(n int) (*Workload, error) {
	if n < 2 {
		return nil, fmt.Errorf("certify: login workload needs ≥ 2 secrets, got %d", n)
	}
	lat := lattice.TwoPoint()
	cfg := login.Config{TableSize: n, WorkFactor: 48, WorkTableSize: 64}
	app, err := login.Build(cfg, lat)
	if err != nil {
		return nil, err
	}
	attempt := login.Attempt{User: "probed-user", Pass: "guess"}
	// Table for secret i: decoys everywhere except the probed user's
	// credential at position i.
	tables := make([][]login.Credential, n)
	for i := range tables {
		creds := make([]login.Credential, n)
		for j := range creds {
			creds[j] = login.Credential{User: fmt.Sprintf("decoy-%03d", j), Pass: fmt.Sprintf("dk-%03d", j)}
		}
		creds[i] = login.Credential{User: attempt.User, Pass: "real-password"}
		tables[i] = creds
	}
	// Worst-case prediction sampling: the probed user at the LAST
	// position (full scan + full verification) plus an unknown user
	// (full scan, no verification).
	newEnv := func() hw.Env { return hw.NewPartitioned(lat, hw.Table1Config()) }
	p1, p2, err := app.SamplePredictions(newEnv, tables[n-1], []login.Attempt{attempt, {User: "ghost", Pass: "x"}})
	if err != nil {
		return nil, err
	}
	return &Workload{
		Name: "login",
		Prog: app.Prog,
		Res:  app.Res,
		Lat:  lat,
		N:    n,
		Set: func(secret int, m *mem.Memory) {
			app.Setup(m, tables[secret], attempt, p1, p2)
		},
	}, nil
}

// DefaultRSAKeys is the certification key set: eight keys of varying
// Hamming weight and bit length, so unmitigated square-and-multiply
// time separates them (Kocher's channel).
func DefaultRSAKeys() []int64 {
	return []int64{0x11, 0x7F, 0xFF1, 0xABCDE, 0xFFFFF, 0x100001, 0x155555, 0x1FFFFF}
}

// RSAWorkload builds the RSA decryption case study with the given
// secret key set (DefaultRSAKeys when nil). The secret is which key
// decrypts; the message is fixed and public. Prediction is sampled
// over the heaviest key (§8.2).
func RSAWorkload(keys []int64) (*Workload, error) {
	if keys == nil {
		keys = DefaultRSAKeys()
	}
	if len(keys) < 2 {
		return nil, fmt.Errorf("certify: rsa workload needs ≥ 2 keys, got %d", len(keys))
	}
	lat := lattice.TwoPoint()
	app, err := rsa.Build(rsa.Config{MaxBlocks: 1, Modulus: 1000003}, rsa.LanguageLevel, lat)
	if err != nil {
		return nil, err
	}
	msg := rsa.Message(1, 1)
	newEnv := func() hw.Env { return hw.NewPartitioned(lat, hw.Table1Config()) }
	pred, err := app.SamplePrediction(newEnv, keys, [][]int64{msg})
	if err != nil {
		return nil, err
	}
	return &Workload{
		Name: "rsa",
		Prog: app.Prog,
		Res:  app.Res,
		Lat:  lat,
		N:    len(keys),
		Set: func(secret int, m *mem.Memory) {
			app.Setup(m, keys[secret], msg, pred)
		},
	}, nil
}

// sleepSrc is the scalars-only wire workload: a mitigated sleep on
// the secret, then a public reply — the same shape the transport
// experiment serves. Scalars-only means the HTTP binding can carry
// its secret through wire inputs.
const sleepSrc = `
var h : H;
var reply : L;
mitigate (1, H) [L,L] {
    sleep((h %% %d) * 4) [H,H];
}
reply := 1;
`

// SleepWorkload builds the mitigated-sleep wire workload with n
// secrets h = 0..n-1. Unmitigated it leaks the secret exactly (the
// sleep is 4·h cycles); mitigated, padding quantizes every probe.
// This is the only built-in workload certifiable through all three
// bindings.
func SleepWorkload(n int) (*Workload, error) {
	if n < 2 {
		return nil, fmt.Errorf("certify: sleep workload needs ≥ 2 secrets, got %d", n)
	}
	lat := lattice.TwoPoint()
	src := fmt.Sprintf(sleepSrc, n)
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	res, err := types.Check(prog, lat)
	if err != nil {
		return nil, err
	}
	return &Workload{
		Name: "sleep",
		Prog: prog,
		Res:  res,
		Lat:  lat,
		N:    n,
		Set: func(secret int, m *mem.Memory) {
			m.Set("h", int64(secret))
		},
		Inputs: func(secret int) map[string]int64 {
			return map[string]int64{"h": int64(secret)}
		},
	}, nil
}

// ProgenWorkload builds a workload from a generated program: the
// secret is the value 0..n-1 of the named secret scalar. Programs and
// secret variables come from the checked-in corpus (see Corpus), whose
// regen tool selects seeds with a real unmitigated timing signal and
// mitigate coverage on every secret.
func ProgenWorkload(seed int64, secretVar string, n int) (*Workload, error) {
	if n < 2 {
		return nil, fmt.Errorf("certify: progen workload needs ≥ 2 secrets, got %d", n)
	}
	lat := lattice.TwoPoint()
	prog, res, _, err := progen.GenerateTyped(progenConfig(lat, seed), 50)
	if err != nil {
		return nil, fmt.Errorf("certify: progen seed %d: %w", seed, err)
	}
	if _, ok := res.VarLabel(secretVar); !ok {
		return nil, fmt.Errorf("certify: progen seed %d: no variable %q", seed, secretVar)
	}
	return &Workload{
		Name: fmt.Sprintf("progen-%d", seed),
		Prog: prog,
		Res:  res,
		Lat:  lat,
		N:    n,
		Set: func(secret int, m *mem.Memory) {
			m.Set(secretVar, int64(secret))
		},
		Inputs: func(secret int) map[string]int64 {
			return map[string]int64{secretVar: int64(secret)}
		},
	}, nil
}

// progenConfig is the generator configuration the corpus tool and
// ProgenWorkload must share: the corpus records seeds, and a seed only
// reproduces its program under identical generation parameters.
func progenConfig(lat lattice.Lattice, seed int64) progen.Config {
	return progen.Config{
		Lat:           lat,
		Seed:          seed,
		MaxDepth:      3,
		StmtsPerBlock: 4,
		AllowMitigate: true,
		AllowSleep:    true,
	}
}

package certify

import (
	"context"
	"strings"
	"testing"

	"repro/internal/machine/hw"
)

// TestCertifySweepFull runs the complete certification matrix in
// process — the same 66 rows `make certify` records — so the full
// planner, every binding constructor, and the gate logic are covered
// by `go test` alone, not only by the external tool.
func TestCertifySweepFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix: covered by the quick slice in -short mode")
	}
	rows, err := Sweep(context.Background(), SweepOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 66 {
		t.Fatalf("full matrix has %d rows, want 66", len(rows))
	}
	if err := Check(rows); err != nil {
		t.Fatalf("full matrix gate: %v", err)
	}
	// Every verdict string renders one of the two report spellings.
	for _, r := range rows {
		if v := r.Result.Verdict(); v != "CERTIFIED" && v != "LEAKS" {
			t.Fatalf("row %s: verdict %q", r.Label(), v)
		}
	}
}

// TestNewBinarySearchDefault: the default constructor draws the
// planted secret from the rng and still isolates it on an exact
// channel.
func TestNewBinarySearchDefault(t *testing.T) {
	b := NewBinarySearch()
	if b.Planted != -1 {
		t.Fatalf("default plant = %d, want -1 (random)", b.Planted)
	}
	w, err := SleepWorkload(8)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := NewEngineTarget(w, TargetConfig{Mitigated: false})
	if err != nil {
		t.Fatal(err)
	}
	att, err := b.Mount(context.Background(), tgt, NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if att.Bits != 3 {
		t.Errorf("exact 8-secret channel should yield 3 bits, got %.3f", att.Bits)
	}
}

// TestEngineTargetCoresident pins the Coresident surface adversaries
// in other packages type-assert: a direct engine target shares its
// environment and publishes the workload's true cache geometry.
func TestEngineTargetCoresident(t *testing.T) {
	w, err := SleepWorkload(4)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := NewEngineTarget(w, TargetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var c Coresident = tgt
	if c.SharedEnv() == nil {
		t.Fatal("engine target must share its environment")
	}
	if got, want := c.HWConfig().Data.L1.Sets, hw.Table1Config().Data.L1.Sets; got != want {
		t.Errorf("published L1 geometry %d sets, want %d", got, want)
	}
}

// TestRNGFloat64 covers the 53-bit construction shared with the fault
// injector: in range, and deterministic per seed.
func TestRNGFloat64(t *testing.T) {
	a, b := NewRNG(3), NewRNG(3)
	for i := 0; i < 100; i++ {
		f := a.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		if f != b.Float64() {
			t.Fatal("same seed must replay")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	a.Intn(0)
}

// TestCorpusEmbedded: the checked-in corpus parses and every entry is
// instantiable — a secret variable to vary and a secret space of at
// least two.
func TestCorpusEmbedded(t *testing.T) {
	entries, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty corpus")
	}
	for _, e := range entries {
		if e.Var == "" || e.N < 2 {
			t.Errorf("corpus entry %+v must name a secret var and N ≥ 2", e)
		}
	}
	ws, err := CorpusWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if !strings.HasPrefix(w.Name, "progen-") {
			t.Errorf("corpus workload name %q", w.Name)
		}
	}
}

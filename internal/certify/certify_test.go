package certify

import (
	"context"
	"strings"
	"testing"
)

// TestCertifyEngineSleep is the core loop in miniature: the mitigated
// sleep workload certifies (measured ≈ 0 against a positive reported
// bound) and the unmitigated baseline leaks its full secret entropy
// against a 0-bit claim.
func TestCertifyEngineSleep(t *testing.T) {
	w, err := SleepWorkload(8)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	mit, err := NewEngineTarget(w, TargetConfig{Engine: "tree", Mitigated: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Certify(ctx, mit, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified {
		t.Errorf("mitigated sleep should certify: upper %.3f vs reported %.3f", res.UpperBits, res.ReportedBits)
	}
	if res.ReportedBits <= 0 {
		t.Errorf("mitigated target should report a positive §7 bound, got %f", res.ReportedBits)
	}
	if len(res.Attacks) != 3 {
		t.Errorf("default battery should mount 3 adversaries, got %d", len(res.Attacks))
	}

	unmit, err := NewEngineTarget(w, TargetConfig{Engine: "tree", Mitigated: false})
	if err != nil {
		t.Fatal(err)
	}
	res, err = Certify(ctx, unmit, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certified {
		t.Error("unmitigated sleep must fail certification (positive control)")
	}
	if res.MeasuredBits < res.SecretBits-1e-9 {
		t.Errorf("unmitigated sleep leaks the whole secret: measured %.3f of %.3f bits",
			res.MeasuredBits, res.SecretBits)
	}
	if res.ReportedBits != 0 {
		t.Errorf("unmitigated target must claim no bound, reported %f", res.ReportedBits)
	}
	if res.Verdict() != "LEAKS" {
		t.Errorf("verdict = %s", res.Verdict())
	}
}

// TestCertifyDeterministic: same seed ⇒ identical report, different
// seed ⇒ same verdict (the claim is statistical, the replay exact).
func TestCertifyDeterministic(t *testing.T) {
	ctx := context.Background()
	run := func(seed int64) *Result {
		w, err := SleepWorkload(8)
		if err != nil {
			t.Fatal(err)
		}
		tgt, err := NewEngineTarget(w, TargetConfig{Engine: "vm", OptLevel: 2, OptSet: true, Mitigated: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Certify(ctx, tgt, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(42), run(42)
	if a.MeasuredBits != b.MeasuredBits || a.UpperBits != b.UpperBits ||
		a.ReportedBits != b.ReportedBits || a.Probes != b.Probes {
		t.Errorf("same seed, different reports:\n%+v\n%+v", a, b)
	}
	for i := range a.Attacks {
		if a.Attacks[i] != b.Attacks[i] {
			t.Errorf("attack %d differs: %+v vs %+v", i, a.Attacks[i], b.Attacks[i])
		}
	}
	if c := run(43); c.Certified != a.Certified {
		t.Error("verdict should not depend on the seed")
	}
}

// TestCertifyLoginEngines: the login workload's position channel is
// fully distinguishable unmitigated and closed by mitigation on both
// engines — and the adaptive attacker recovers the planted secret.
func TestCertifyLoginEngines(t *testing.T) {
	w, err := LoginWorkload(8)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, engine := range []string{"tree", "vm"} {
		unmit, err := NewEngineTarget(w, TargetConfig{Engine: engine, Mitigated: false})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Certify(ctx, unmit, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if res.MeasuredBits < 1 {
			t.Errorf("%s unmitigated login measured %.3f bits; the position channel should exceed 1",
				engine, res.MeasuredBits)
		}
		var bs *Attack
		for i := range res.Attacks {
			if res.Attacks[i].Adversary == "binary-search" {
				bs = &res.Attacks[i]
			}
		}
		if bs == nil || bs.Bits < res.SecretBits-1e-9 {
			t.Errorf("%s: binary search should isolate the planted secret exactly: %+v", engine, bs)
		}

		mit, err := NewEngineTarget(w, TargetConfig{Engine: engine, Mitigated: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err = Certify(ctx, mit, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Certified {
			t.Errorf("%s mitigated login should certify: upper %.3f vs reported %.3f",
				engine, res.UpperBits, res.ReportedBits)
		}
		if res.MeasuredBits != 0 {
			t.Errorf("%s mitigated login should time identically (measured %.3f bits)", engine, res.MeasuredBits)
		}
	}
}

// TestCertifyPoolBinding drives the session-managed pool: the
// reported bound is the session layer's own leakage account.
func TestCertifyPoolBinding(t *testing.T) {
	w, err := SleepWorkload(8)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	mit, err := NewPoolTarget(w, TargetConfig{Engine: "vm", OptLevel: 2, OptSet: true, Mitigated: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mit.Close()
	res, err := Certify(ctx, mit, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified {
		t.Errorf("mitigated pool should certify: upper %.3f vs reported %.3f", res.UpperBits, res.ReportedBits)
	}
	if !strings.HasPrefix(res.Target, "pool/") {
		t.Errorf("target name = %q", res.Target)
	}

	unmit, err := NewPoolTarget(w, TargetConfig{Mitigated: false})
	if err != nil {
		t.Fatal(err)
	}
	defer unmit.Close()
	res, err = Certify(ctx, unmit, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certified || res.MeasuredBits < 1 {
		t.Errorf("unmitigated pool is the positive control: %+v", res)
	}
}

// TestCertifyHTTPBinding drives the full network stack through the
// client SDK; the reported bound is the wire's leakage_bits.
func TestCertifyHTTPBinding(t *testing.T) {
	w, err := SleepWorkload(8)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	mit, err := NewHTTPTarget(w, TargetConfig{Engine: "vm", OptLevel: 2, OptSet: true, Mitigated: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mit.Close()
	res, err := Certify(ctx, mit, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified {
		t.Errorf("mitigated HTTP should certify: upper %.3f vs reported %.3f", res.UpperBits, res.ReportedBits)
	}
	if res.ReportedBits <= 0 {
		t.Errorf("wire leakage_bits should be positive, got %f", res.ReportedBits)
	}

	// A workload without wire inputs cannot bind over HTTP.
	login, err := LoginWorkload(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHTTPTarget(login, TargetConfig{}); err == nil {
		t.Error("login workload has no wire inputs; NewHTTPTarget should refuse")
	}
}

// TestCertifyRSAWorkload: the Kocher channel across VM opt levels.
func TestCertifyRSAWorkload(t *testing.T) {
	w, err := RSAWorkload(nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, opt := range []int{0, 2} {
		cfg := TargetConfig{Engine: "vm", OptLevel: opt, OptSet: true}
		cfg.Mitigated = false
		unmit, err := NewEngineTarget(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Certify(ctx, unmit, Options{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if res.MeasuredBits < 1 {
			t.Errorf("opt%d unmitigated rsa measured %.3f bits", opt, res.MeasuredBits)
		}
		cfg.Mitigated = true
		mit, err := NewEngineTarget(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err = Certify(ctx, mit, Options{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Certified {
			t.Errorf("opt%d mitigated rsa should certify: upper %.3f vs reported %.3f",
				opt, res.UpperBits, res.ReportedBits)
		}
	}
}

// TestCertifyCorpusWorkloads: every checked-in progen seed loads and
// its mitigated configuration certifies.
func TestCertifyCorpusWorkloads(t *testing.T) {
	ws, err := CorpusWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, w := range ws {
		mit, err := NewEngineTarget(w, TargetConfig{Mitigated: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Certify(ctx, mit, Options{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Certified {
			t.Errorf("%s mitigated should certify: upper %.3f vs reported %.3f",
				w.Name, res.UpperBits, res.ReportedBits)
		}
		unmit, err := NewEngineTarget(w, TargetConfig{Mitigated: false})
		if err != nil {
			t.Fatal(err)
		}
		res, err = Certify(ctx, unmit, Options{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.MeasuredBits < 1 {
			t.Errorf("%s unmitigated measured %.3f bits; the corpus tool requires ≥ 1", w.Name, res.MeasuredBits)
		}
	}
}

// TestCertifyErrors covers the driver's failure modes.
func TestCertifyErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := SleepWorkload(1); err == nil {
		t.Error("1-secret workload should be rejected")
	}
	if _, err := LoginWorkload(1); err == nil {
		t.Error("1-secret login should be rejected")
	}
	if _, err := RSAWorkload([]int64{1}); err == nil {
		t.Error("1-key rsa should be rejected")
	}
	if _, err := ProgenWorkload(1, "no_such_var", 8); err == nil {
		t.Error("unknown secret var should be rejected")
	}
	if _, err := ProgenWorkload(1, "s_H_0", 1); err == nil {
		t.Error("1-secret progen should be rejected")
	}
	if _, err := NewEngineTarget(mustSleep(t), TargetConfig{Hardware: "no-such-hw"}); err == nil {
		t.Error("unknown hardware should be rejected")
	}
	if _, err := NewEngineTarget(mustSleep(t), TargetConfig{Engine: "no-such-engine"}); err == nil {
		t.Error("unknown engine should be rejected")
	}
	w := mustSleep(t)
	w.N = 1
	tgt, err := NewEngineTarget(w, TargetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Certify(ctx, tgt, Options{}); err == nil {
		t.Error("Certify should reject a 1-secret target")
	}
}

func mustSleep(t *testing.T) *Workload {
	t.Helper()
	w, err := SleepWorkload(8)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

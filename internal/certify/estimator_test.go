package certify

import (
	"math"
	"testing"
)

func TestEstimateMIPerfectChannel(t *testing.T) {
	// 8 secrets, each deterministically mapped to a distinct time,
	// 4 samples each: the plug-in estimate is exactly 3 bits. With
	// kx = ky = kxy the Miller–Madow correction is +(k−1)/(2n·ln2) —
	// conservative in the certification direction (never understates a
	// deterministic channel).
	var secrets []int
	var obs []uint64
	for r := 0; r < 4; r++ {
		for s := 0; s < 8; s++ {
			secrets = append(secrets, s)
			obs = append(obs, uint64(100+10*s))
		}
	}
	mi := EstimateMI(secrets, obs, EstimatorOptions{}, NewRNG(1))
	if math.Abs(mi.Plugin-3) > 1e-9 {
		t.Errorf("plugin = %f, want 3", mi.Plugin)
	}
	if mi.Bits < 3 || mi.Bits > 3.2 {
		t.Errorf("corrected = %f, want in [3, 3.2]", mi.Bits)
	}
	if mi.Upper < mi.Bits {
		t.Errorf("upper %f below point %f", mi.Upper, mi.Bits)
	}
	if mi.N != 32 {
		t.Errorf("N = %d", mi.N)
	}
}

func TestEstimateMIFlatChannel(t *testing.T) {
	var secrets []int
	var obs []uint64
	for r := 0; r < 4; r++ {
		for s := 0; s < 8; s++ {
			secrets = append(secrets, s)
			obs = append(obs, 42)
		}
	}
	mi := EstimateMI(secrets, obs, EstimatorOptions{}, NewRNG(1))
	if mi.Plugin != 0 || mi.Bits != 0 || mi.Upper != 0 {
		t.Errorf("flat channel should score exactly zero: %+v", mi)
	}
}

func TestEstimateMIIndependent(t *testing.T) {
	// Observation alternates independently of the secret: the plug-in
	// estimate is 0 here (counts are exactly balanced), and the
	// correction must not push it negative.
	secrets := []int{0, 0, 1, 1, 0, 0, 1, 1}
	obs := []uint64{5, 9, 5, 9, 9, 5, 9, 5}
	mi := EstimateMI(secrets, obs, EstimatorOptions{}, NewRNG(1))
	if mi.Bits != 0 {
		t.Errorf("independent corrected MI = %f, want 0", mi.Bits)
	}
}

func TestEstimateMICorrectionShrinksBias(t *testing.T) {
	// Sparse sampling of independent variables: the plug-in estimate
	// is spuriously positive; Miller–Madow must shrink it.
	rng := NewRNG(7)
	var secrets []int
	var obs []uint64
	for i := 0; i < 24; i++ {
		secrets = append(secrets, rng.Intn(8))
		obs = append(obs, uint64(rng.Intn(8)))
	}
	mi := EstimateMI(secrets, obs, EstimatorOptions{}, NewRNG(1))
	if mi.Plugin <= 0 {
		t.Skip("sample happened to score zero plug-in MI")
	}
	if mi.Bits >= mi.Plugin {
		t.Errorf("correction did not shrink bias: plugin %f, corrected %f", mi.Plugin, mi.Bits)
	}
}

func TestEstimateMIDeterministic(t *testing.T) {
	secrets := []int{0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3}
	obs := []uint64{9, 9, 7, 7, 9, 7, 7, 9, 9, 9, 7, 7}
	a := EstimateMI(secrets, obs, EstimatorOptions{}, NewRNG(99))
	b := EstimateMI(secrets, obs, EstimatorOptions{}, NewRNG(99))
	if a != b {
		t.Errorf("same seed, different estimates: %+v vs %+v", a, b)
	}
	c := EstimateMI(secrets, obs, EstimatorOptions{}, NewRNG(100))
	if a.Bits != c.Bits {
		t.Errorf("the point estimate must not depend on the bootstrap seed: %f vs %f", a.Bits, c.Bits)
	}
}

func TestEstimateMIDegenerate(t *testing.T) {
	if mi := EstimateMI(nil, nil, EstimatorOptions{}, NewRNG(1)); mi != (MI{}) {
		t.Errorf("empty input: %+v", mi)
	}
	if mi := EstimateMI([]int{1}, []uint64{1, 2}, EstimatorOptions{}, NewRNG(1)); mi != (MI{}) {
		t.Errorf("length mismatch: %+v", mi)
	}
	// Bootstrap disabled: Upper equals the point estimate.
	mi := EstimateMI([]int{0, 0, 1, 1}, []uint64{1, 1, 2, 2}, EstimatorOptions{Bootstrap: -1}, NewRNG(1))
	if mi.Upper != mi.Bits {
		t.Errorf("no-bootstrap Upper = %f, want %f", mi.Upper, mi.Bits)
	}
}

func TestRNGDeterminismAndRanges(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed streams diverged")
		}
	}
	if NewRNG(5).Fork(1).Uint64() == NewRNG(5).Fork(2).Uint64() {
		t.Error("forks with distinct tags should differ")
	}
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(idx)
	seen := map[int]bool{}
	for _, v := range idx {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Error("Shuffle lost elements")
	}
}

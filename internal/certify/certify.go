// Package certify is the adversarial counterpart to the §7 leakage
// bound: it mounts black-box timing attacks against the running system
// and statistically certifies that the leakage an adversary actually
// measures never exceeds the bound the system reports.
//
// The paper's guarantee is quantitative — predictive mitigation caps
// what a timing adversary can learn at |L↑|·log2(K+1)·(1+log2 T) bits
// — and the service layer enforces that number at admission. But an
// enforced number is only as good as its relationship to reality.
// This package closes the loop: a Target wraps one configuration of
// the stack (a direct exec.Engine, a server.Pool with per-tenant
// sessions, or the HTTP transport through the client SDK) behind a
// pure probe-the-secret-observe-the-clock interface, an Adversary
// mounts an attack against it knowing nothing but response times, and
// Certify compares the measured information (upper confidence bound)
// against the §7 bound the target reported for exactly the probes the
// adversary spent. Mitigated configurations must certify; unmitigated
// baselines must measurably leak (the positive control that shows the
// estimators have teeth).
//
// Determinism: every random choice — sampling order, plant selection,
// bootstrap resampling — derives from fault.Mix64 (the splitmix64
// finalizer the fault injector and client jitter already use), so a
// certification run replays bit-for-bit from its seed.
package certify

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/machine/hw"
)

// ErrNotApplicable is returned by an Adversary whose observation
// channel the target does not expose (e.g. a cache prime+probe
// attacker mounted on a remote HTTP target). Certify skips such
// adversaries instead of failing the run.
var ErrNotApplicable = errors.New("certify: adversary not applicable to this target")

// Target is one configuration of the system under attack, reduced to
// the adversary's view: pick a secret index, get a clock observation.
// The secret space is indexed 0..Secrets()-1; Probe installs secret i
// and returns the response time the adversary would observe. Targets
// are stateful on purpose — caches stay warm and mitigation epochs
// advance across probes, exactly as they would for a real client — and
// are not safe for concurrent use.
type Target interface {
	// Name identifies the configuration in reports
	// (e.g. "engine/vm/opt2/partitioned/mitigated/login").
	Name() string
	// Secrets is the size N of the secret space.
	Secrets() int
	// Probe runs the target with secret index i and returns the
	// observed response time in simulated cycles.
	Probe(ctx context.Context, secret int) (uint64, error)
	// ReportedBits is the cumulative §7 leakage bound the system
	// reports for the probes spent so far. Configurations that disable
	// mitigation claim no bound and must return 0 — the paper's
	// guarantee is only for mitigated execution.
	ReportedBits() float64
	// Close releases the target's resources (pools, listeners).
	Close() error
}

// Coresident is implemented by targets whose machine environment the
// adversary shares — the paper's §2.1 threat model, where attacker and
// victim are tenants of the same hardware. Cache-probing adversaries
// type-assert to it and skip targets that are only reachable remotely.
type Coresident interface {
	// SharedEnv returns the machine environment the victim runs on.
	SharedEnv() hw.Env
	// HWConfig returns the environment's geometry — what a coresident
	// attacker learns offline (cache sets, associativity, block size)
	// to build eviction sets.
	HWConfig() hw.Config
}

// Attack is one adversary's outcome against one target.
type Attack struct {
	// Adversary names the attacker.
	Adversary string
	// Probes is how many probes the attack spent.
	Probes int
	// Bits is the attack's point estimate of extracted information.
	Bits float64
	// Upper is the attack's upper confidence bound on Bits — what
	// certification compares against the reported §7 bound. Equal to
	// Bits for deterministic attacks with no sampling error.
	Upper float64
	// Detail is a short human-readable account of the attack.
	Detail string
}

// Adversary mounts a black-box attack against a target. rng is the
// adversary's private deterministic randomness stream.
type Adversary interface {
	Name() string
	Mount(ctx context.Context, t Target, rng *RNG) (Attack, error)
}

// Result is the certification report for one target.
type Result struct {
	// Target is the attacked configuration's name.
	Target string
	// Secrets is the secret-space size; SecretBits its entropy log2 N
	// (the ceiling on what any attack can extract).
	Secrets    int
	SecretBits float64
	// Attacks holds each adversary's outcome, in mount order.
	Attacks []Attack
	// MeasuredBits is the largest point estimate across adversaries,
	// UpperBits the largest upper confidence bound; both are clamped
	// to SecretBits.
	MeasuredBits float64
	UpperBits    float64
	// ReportedBits is the §7 bound the system reported after all
	// probes (0 for unmitigated configurations, which claim nothing).
	ReportedBits float64
	// Probes is the total probes spent across adversaries.
	Probes int
	// Certified is the verdict: no adversary's upper confidence bound
	// exceeded the reported bound.
	Certified bool
}

// Verdict renders the boolean verdict the way reports print it.
func (r *Result) Verdict() string {
	if r.Certified {
		return "CERTIFIED"
	}
	return "LEAKS"
}

// Options configure a certification run.
type Options struct {
	// Seed drives every random choice; runs with equal seeds replay
	// bit-for-bit.
	Seed int64
	// Adversaries is the attack battery; nil selects the default:
	// exhaustive distinguisher, adaptive binary search, and the
	// mutual-information estimator.
	Adversaries []Adversary
}

// DefaultAdversaries is the standard battery Certify mounts when
// Options.Adversaries is nil.
func DefaultAdversaries() []Adversary {
	return []Adversary{&Exhaustive{}, &BinarySearch{}, &MIEstimator{}}
}

// Certify mounts every adversary against the target and compares the
// worst measured upper confidence bound against the §7 bound the
// target reports for the probes spent. Adversaries returning
// ErrNotApplicable are skipped.
func Certify(ctx context.Context, t Target, opts Options) (*Result, error) {
	advs := opts.Adversaries
	if advs == nil {
		advs = DefaultAdversaries()
	}
	n := t.Secrets()
	if n < 2 {
		return nil, fmt.Errorf("certify: target %s has %d secrets; need ≥ 2", t.Name(), n)
	}
	res := &Result{
		Target:     t.Name(),
		Secrets:    n,
		SecretBits: math.Log2(float64(n)),
	}
	rng := NewRNG(opts.Seed)
	for i, adv := range advs {
		att, err := adv.Mount(ctx, t, rng.Fork(uint64(i+1)))
		if errors.Is(err, ErrNotApplicable) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("certify: %s vs %s: %w", adv.Name(), t.Name(), err)
		}
		att.Bits = clamp(att.Bits, res.SecretBits)
		att.Upper = clamp(att.Upper, res.SecretBits)
		if att.Upper < att.Bits {
			att.Upper = att.Bits
		}
		res.Attacks = append(res.Attacks, att)
		res.Probes += att.Probes
		res.MeasuredBits = math.Max(res.MeasuredBits, att.Bits)
		res.UpperBits = math.Max(res.UpperBits, att.Upper)
	}
	if len(res.Attacks) == 0 {
		return nil, fmt.Errorf("certify: no adversary applied to target %s", t.Name())
	}
	res.ReportedBits = t.ReportedBits()
	res.Certified = res.UpperBits <= res.ReportedBits+1e-9
	return res, nil
}

func clamp(v, hi float64) float64 {
	if v < 0 {
		return 0
	}
	if v > hi {
		return hi
	}
	return v
}

// RNG is the deterministic randomness stream of an attack: a counter
// hashed through fault.Mix64 (splitmix64 finalization), so every draw
// is a pure function of (seed, draw index) and a run replays exactly.
type RNG struct {
	seed uint64
	ctr  uint64
}

// NewRNG returns a stream for the given seed.
func NewRNG(seed int64) *RNG { return &RNG{seed: uint64(seed)} }

// Fork derives an independent stream; children with distinct tags are
// uncorrelated regardless of how much the parent has drawn.
func (r *RNG) Fork(tag uint64) *RNG {
	return &RNG{seed: fault.Mix64(r.seed, 0x5ec7e7, tag)}
}

// Uint64 returns the next draw.
func (r *RNG) Uint64() uint64 {
	r.ctr++
	return fault.Mix64(r.seed, r.ctr)
}

// Intn returns a draw in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("certify: Intn needs n > 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a draw in [0, 1), with the same 53-bit construction
// the fault injector and client jitter use.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Shuffle permutes idx in place (Fisher–Yates).
func (r *RNG) Shuffle(idx []int) {
	for i := len(idx) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
}

package certify

import (
	_ "embed"
	"encoding/json"
	"fmt"
)

// CorpusEntry is one vetted progen workload: a generator seed plus the
// secret variable and secret-space size to certify over. Entries are
// selected by internal/tools/gencertifycorpus, which keeps only seeds
// whose program shows a real unmitigated timing signal (≥ 1 bit over
// the secret space) and executes at least one mitigate command for
// every secret — without both, a seed proves nothing in either
// direction.
type CorpusEntry struct {
	Seed int64  `json:"seed"`
	Var  string `json:"var"`
	N    int    `json:"n"`
}

//go:embed testdata/progen_corpus.json
var corpusJSON []byte

// Corpus returns the checked-in progen certification corpus.
// Regenerate with `go run ./internal/tools/gencertifycorpus`.
func Corpus() ([]CorpusEntry, error) {
	var doc struct {
		Programs []CorpusEntry `json:"programs"`
	}
	if err := json.Unmarshal(corpusJSON, &doc); err != nil {
		return nil, fmt.Errorf("certify: corrupt progen corpus: %w", err)
	}
	if len(doc.Programs) == 0 {
		return nil, fmt.Errorf("certify: empty progen corpus")
	}
	return doc.Programs, nil
}

// CorpusWorkloads instantiates every corpus entry.
func CorpusWorkloads() ([]*Workload, error) {
	entries, err := Corpus()
	if err != nil {
		return nil, err
	}
	out := make([]*Workload, 0, len(entries))
	for _, e := range entries {
		w, err := ProgenWorkload(e.Seed, e.Var, e.N)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

package certify

import (
	"math"
	"sort"
)

// MI is a mutual-information estimate over (secret, observation)
// pairs, in bits.
type MI struct {
	// Plugin is the raw plug-in (maximum-likelihood) estimate from the
	// empirical joint distribution. It is biased upward: with n
	// samples over sparse tables, even independent variables score
	// positive.
	Plugin float64
	// Bits is the Miller–Madow corrected estimate — Plugin minus the
	// first-order bias term (|X|−1 + |Y|−1 − |XY|+1)/(2n·ln 2) applied
	// through the entropy decomposition, clamped at 0.
	Bits float64
	// Upper is the upper confidence bound from a deterministic
	// bootstrap over the sample pairs (never below Bits).
	Upper float64
	// N is the sample count.
	N int
}

// EstimatorOptions tune EstimateMI.
type EstimatorOptions struct {
	// Bootstrap is the number of bootstrap resamples for the
	// confidence bound; default 200. 0 after defaulting (i.e. negative
	// input) disables the bootstrap, leaving Upper = Bits.
	Bootstrap int
	// Confidence is the one-sided level of the upper bound; default
	// 0.975.
	Confidence float64
}

func (o EstimatorOptions) withDefaults() EstimatorOptions {
	if o.Bootstrap == 0 {
		o.Bootstrap = 200
	}
	if o.Bootstrap < 0 {
		o.Bootstrap = 0
	}
	if o.Confidence == 0 {
		o.Confidence = 0.975
	}
	return o
}

// EstimateMI estimates I(secret; observation) from paired samples.
// The bootstrap resamples the pairs with replacement using rng, so
// the confidence bound is a pure function of (samples, rng seed) and
// certification runs replay bit-for-bit.
func EstimateMI(secrets []int, obs []uint64, opts EstimatorOptions, rng *RNG) MI {
	n := len(secrets)
	if n == 0 || n != len(obs) {
		return MI{}
	}
	opts = opts.withDefaults()

	// Relabel both margins to dense indices so counting is O(n).
	xs := make([]int, n)
	ys := make([]int, n)
	xIdx := map[int]int{}
	yIdx := map[uint64]int{}
	for i := range secrets {
		xi, ok := xIdx[secrets[i]]
		if !ok {
			xi = len(xIdx)
			xIdx[secrets[i]] = xi
		}
		yi, ok := yIdx[obs[i]]
		if !ok {
			yi = len(yIdx)
			yIdx[obs[i]] = yi
		}
		xs[i], ys[i] = xi, yi
	}
	nx, ny := len(xIdx), len(yIdx)

	point := miMillerMadow(xs, ys, nx, ny, n)
	out := MI{
		Plugin: miPlugin(xs, ys, nx, ny, n),
		Bits:   point,
		Upper:  point,
		N:      n,
	}
	if opts.Bootstrap == 0 || ny == 1 {
		// A constant channel has no sampling error to bootstrap.
		return out
	}

	// Percentile bootstrap over the pairs. Each resample reuses the
	// dense labels, so a resample's support can only shrink.
	bxs := make([]int, n)
	bys := make([]int, n)
	boots := make([]float64, opts.Bootstrap)
	for b := range boots {
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bxs[i], bys[i] = xs[j], ys[j]
		}
		boots[b] = miMillerMadow(bxs, bys, nx, ny, n)
	}
	sort.Float64s(boots)
	q := int(math.Ceil(opts.Confidence*float64(opts.Bootstrap))) - 1
	if q < 0 {
		q = 0
	}
	if q >= opts.Bootstrap {
		q = opts.Bootstrap - 1
	}
	// The attack's certified value must dominate the point estimate:
	// a percentile that lands below it (possible at small n) is not an
	// upper bound, so take the max.
	out.Upper = math.Max(point, boots[q])
	return out
}

// miPlugin computes the plug-in estimate from dense-labeled pairs.
func miPlugin(xs, ys []int, nx, ny, n int) float64 {
	joint := make([]int, nx*ny)
	mx := make([]int, nx)
	my := make([]int, ny)
	for i := 0; i < n; i++ {
		joint[xs[i]*ny+ys[i]]++
		mx[xs[i]]++
		my[ys[i]]++
	}
	fn := float64(n)
	mi := 0.0
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			c := joint[x*ny+y]
			if c == 0 {
				continue
			}
			pxy := float64(c) / fn
			mi += pxy * math.Log2(pxy*fn*fn/(float64(mx[x])*float64(my[y])))
		}
	}
	if mi < 0 {
		return 0
	}
	return mi
}

// miMillerMadow applies the Miller–Madow bias correction through the
// decomposition I = H(X)+H(Y)−H(X,Y): each entropy gains
// (support−1)/(2n·ln 2), so the estimate loses
// (|XY|−1 − (|X|−1) − (|Y|−1))/(2n·ln 2) — the usual downward
// correction, since the joint support is at least each margin's.
// Supports are counted from the sample (occupied cells), not the
// alphabet.
func miMillerMadow(xs, ys []int, nx, ny, n int) float64 {
	seenJoint := make([]bool, nx*ny)
	seenX := make([]bool, nx)
	seenY := make([]bool, ny)
	kx, ky, kxy := 0, 0, 0
	for i := 0; i < n; i++ {
		if !seenX[xs[i]] {
			seenX[xs[i]] = true
			kx++
		}
		if !seenY[ys[i]] {
			seenY[ys[i]] = true
			ky++
		}
		j := xs[i]*ny + ys[i]
		if !seenJoint[j] {
			seenJoint[j] = true
			kxy++
		}
	}
	corr := (float64(kx-1) + float64(ky-1) - float64(kxy-1)) / (2 * float64(n) * math.Ln2)
	mi := miPlugin(xs, ys, nx, ny, n) + corr
	if mi < 0 {
		return 0
	}
	return mi
}

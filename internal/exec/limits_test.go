package exec

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/exec/budget"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/progen"
)

func TestLimitsValidate(t *testing.T) {
	if err := (Limits{MaxSteps: 1, Timeout: time.Millisecond}).Validate(); err != nil {
		t.Errorf("valid limits rejected: %v", err)
	}
	if err := (Limits{MaxSteps: -1}).Validate(); err == nil || !strings.Contains(err.Error(), "MaxSteps") {
		t.Errorf("negative MaxSteps must fail, got %v", err)
	}
	if err := (Limits{Timeout: -time.Second}).Validate(); err == nil || !strings.Contains(err.Error(), "Timeout") {
		t.Errorf("negative Timeout must fail, got %v", err)
	}
}

func TestLimitsAsBudget(t *testing.T) {
	b := Limits{MaxSteps: 3, MaxCycles: 5}.AsBudget()
	if b != (budget.Budget{MaxSteps: 3, MaxCycles: 5}) {
		t.Errorf("AsBudget = %+v", b)
	}
}

func TestLimitsBound(t *testing.T) {
	ctx, cancel := Limits{}.Bound(context.Background())
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Error("no timeout must not set a deadline")
	}
	ctx, cancel = Limits{Timeout: time.Hour}.Bound(context.Background())
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Error("timeout must set a deadline")
	}
}

func TestNewEngineRejectsBadLimits(t *testing.T) {
	lat := lattice.TwoPoint()
	prog, res, _, err := progen.GenerateTyped(progen.Config{Lat: lat, Seed: 1}, 50)
	if err != nil {
		t.Fatalf("no well-typed program: %v", err)
	}
	_, err = NewEngine("tree", prog, res, hw.NewFlat(lat, 2), Options{Limits: Limits{MaxSteps: -1}})
	if err == nil {
		t.Fatal("negative MaxSteps must fail engine construction")
	}
}

package exec

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/exec/budget"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/progen"
)

func TestEffectiveLimitsPrefersExplicitFields(t *testing.T) {
	o := Options{
		Limits: Limits{MaxSteps: 7, MaxCycles: 11, Timeout: time.Second},
		Budget: budget.Budget{MaxSteps: 100, MaxCycles: 200},
	}
	got := o.EffectiveLimits()
	if got.MaxSteps != 7 || got.MaxCycles != 11 || got.Timeout != time.Second {
		t.Errorf("explicit Limits must win over deprecated Budget: %+v", got)
	}
}

func TestEffectiveLimitsFallsBackToDeprecatedBudget(t *testing.T) {
	o := Options{Budget: budget.Budget{MaxSteps: 100, MaxCycles: 200}}
	got := o.EffectiveLimits()
	if got.MaxSteps != 100 || got.MaxCycles != 200 {
		t.Errorf("zero Limits must fall back to Budget: %+v", got)
	}
}

func TestLimitsValidate(t *testing.T) {
	if err := (Limits{MaxSteps: 1, Timeout: time.Millisecond}).Validate(); err != nil {
		t.Errorf("valid limits rejected: %v", err)
	}
	if err := (Limits{MaxSteps: -1}).Validate(); err == nil || !strings.Contains(err.Error(), "MaxSteps") {
		t.Errorf("negative MaxSteps must fail, got %v", err)
	}
	if err := (Limits{Timeout: -time.Second}).Validate(); err == nil || !strings.Contains(err.Error(), "Timeout") {
		t.Errorf("negative Timeout must fail, got %v", err)
	}
}

func TestLimitsAsBudget(t *testing.T) {
	b := Limits{MaxSteps: 3, MaxCycles: 5}.AsBudget()
	if b != (budget.Budget{MaxSteps: 3, MaxCycles: 5}) {
		t.Errorf("AsBudget = %+v", b)
	}
}

func TestLimitsBound(t *testing.T) {
	ctx, cancel := Limits{}.Bound(context.Background())
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Error("no timeout must not set a deadline")
	}
	ctx, cancel = Limits{Timeout: time.Hour}.Bound(context.Background())
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Error("timeout must set a deadline")
	}
}

func TestNewEngineRejectsBadLimits(t *testing.T) {
	lat := lattice.TwoPoint()
	prog, res, _, err := progen.GenerateTyped(progen.Config{Lat: lat, Seed: 1}, 50)
	if err != nil {
		t.Fatalf("no well-typed program: %v", err)
	}
	_, err = NewEngine("tree", prog, res, hw.NewFlat(lat, 2), Options{Limits: Limits{MaxSteps: -1}})
	if err == nil {
		t.Fatal("negative MaxSteps must fail engine construction")
	}
}

// Package exec defines the execution-engine API that unifies the two
// language implementations — the tree-walking full semantics and the
// bytecode VM — behind one interface, so the service layer (and any
// other caller) can select an engine by name the same way it selects a
// machine environment from hw's registry.
//
// An Engine is constructed once per serial execution context (a
// server, a pool shard, an experiment arm) for one program, and then
// runs many requests. Engines are NOT safe for concurrent use; like
// server.Server, each goroutine owns its own. This is what lets the VM
// engine compile once (through the shared ProgramCache) and reuse its
// machine across requests — the service hot path the tree-walker
// cannot match, because it must rebuild per-request interpreter state.
//
// Both engines run against the same hw.Env contract and, because the
// VM engine uses the tree-compatible timing model
// (bytecode.TimingTree), they produce identical event traces and
// leakage bounds — differential tests in this package enforce that.
package exec

import (
	"context"
	"fmt"
	"time"

	"repro/internal/exec/budget"
	"repro/internal/fault"
	"repro/internal/mitigation"
	"repro/internal/obs"
	"repro/internal/sem/events"
	"repro/internal/sem/mem"
)

// Limits bounds one request, unifying the budget and timeout knobs
// that used to be duplicated between server.Options and exec.Options.
// Zero fields are unlimited. It is embedded in both option structs, so
// the same field names configure a serial server, a pool shard, and a
// bare engine — and the wire schema of internal/transport freezes
// against one vocabulary.
type Limits struct {
	// MaxSteps bounds engine-granular work per request: language-level
	// steps for the tree engine, instructions for the VM. Exceeding it
	// fails the run with budget.ErrStepLimit.
	MaxSteps int
	// MaxCycles, when non-zero, bounds each request's simulated cycles
	// — the same simulated time to every engine. Exceeding it fails
	// the run with budget.ErrCycleLimit.
	MaxCycles uint64
	// Timeout, when positive, bounds each request's wall-clock time:
	// Run derives a per-request deadline context, so a stalled or
	// runaway request fails with context.DeadlineExceeded instead of
	// holding its execution context forever.
	Timeout time.Duration
}

// Validate reports the first configuration error — the single
// validation point for every option struct that embeds Limits.
func (l Limits) Validate() error {
	if l.MaxSteps < 0 {
		return fmt.Errorf("exec: MaxSteps must be ≥ 0, got %d", l.MaxSteps)
	}
	if l.Timeout < 0 {
		return fmt.Errorf("exec: Timeout must be ≥ 0, got %v", l.Timeout)
	}
	return nil
}

// AsBudget projects the step/cycle bounds into the engine-level budget
// vocabulary.
func (l Limits) AsBudget() budget.Budget {
	return budget.Budget{MaxSteps: l.MaxSteps, MaxCycles: l.MaxCycles}
}

// Bound derives a context honoring Timeout; the returned cancel must
// always be called. Without a timeout it returns ctx unchanged.
func (l Limits) Bound(ctx context.Context) (context.Context, context.CancelFunc) {
	if l.Timeout > 0 {
		return context.WithTimeout(ctx, l.Timeout)
	}
	return ctx, func() {}
}

// Options carries the knobs shared by every engine: cost model,
// mitigation configuration, per-run budgets, and instrumentation. It
// replaces the per-engine option structs (full.Options,
// bytecode.VMOptions) on the service path; those remain as
// engine-internal configuration for direct use of the interpreters.
type Options struct {
	// BaseCost is the per-step base cost and OpCost the per-operator
	// cost; both default to 1 unless CostSet honors explicit zeros.
	BaseCost uint64
	OpCost   uint64
	CostSet  bool
	// Scheme and Policy configure predictive mitigation; defaults are
	// FastDoubling and PerLevel.
	Scheme mitigation.Scheme
	Policy mitigation.Policy
	// DisableMitigation makes mitigate blocks record but not pad.
	DisableMitigation bool
	// OptLevel selects the VM engine's bytecode optimization pipeline
	// level: 0 runs the stack interpreter, 1 adds register lowering
	// with operand predecoding, 2 adds superinstruction fusion. The
	// optimized loop is observationally identical to level 0 (same
	// clocks, traces, mitigation, memory); the differential suite in
	// this package enforces that. When OptSet is false, OptLevel is
	// ignored and DefaultOptLevel applies. The tree engine ignores
	// both.
	OptLevel int
	OptSet   bool
	// Limits bounds every Run: engine steps, simulated cycles, and —
	// when Timeout is set — wall-clock time. Zero fields are
	// unlimited.
	Limits
	// Metrics, when non-nil, receives instrumentation from every run.
	Metrics *obs.Metrics
	// Injector, when non-nil, delivers scheduled faults at the engine
	// fault points (fault.EngineError before a run, fault.ClockSkew on
	// the reported clock, fault.CacheFactory at VM construction). Nil
	// — the default — is a no-op.
	Injector *fault.Injector
	// Shard identifies the serial execution context that owns this
	// engine (a pool sets worker i's shard to i), so shard-filtered
	// fault rules can target one worker. Plain servers leave it 0.
	Shard int
}

// DefaultOptLevel is the optimization level applied when Options.OptSet
// is false: the full pipeline, since it is observationally identical
// and strictly faster.
const DefaultOptLevel = 2

// EffectiveOptLevel resolves the optimization level: the default when
// unset, and clamped to the pipeline's supported range.
func (o Options) EffectiveOptLevel() int {
	lvl := o.OptLevel
	if !o.OptSet {
		lvl = DefaultOptLevel
	}
	if lvl < 0 {
		lvl = 0
	}
	if lvl > 2 {
		lvl = 2
	}
	return lvl
}

// injectRun evaluates the pre-run engine fault points shared by every
// engine: an injected engine error fails the run with a transient
// error before any machine state is touched.
func (o *Options) injectRun() error {
	f, ok := o.Injector.Fire(fault.EngineError, o.Shard)
	if !ok {
		return nil
	}
	if o.Metrics != nil {
		o.Metrics.AddFault()
	}
	return f.Err
}

// injectClock evaluates the post-run clock-skew point, returning the
// cycles to add to the reported clock (0 when quiet).
func (o *Options) injectClock() uint64 {
	f, ok := o.Injector.Fire(fault.ClockSkew, o.Shard)
	if !ok {
		return 0
	}
	if o.Metrics != nil {
		o.Metrics.AddFault()
	}
	return f.Skew
}

// Request is one unit of work for an engine.
type Request struct {
	// Setup sets per-request inputs in the program memory before the
	// run (the same shape as server.Request).
	Setup func(*mem.Memory)
	// Mit, when non-nil, is persistent mitigation state: it is spliced
	// into the machine before the run, and on success the machine's
	// (possibly inflated) counters are copied back. A failed or
	// aborted run leaves it untouched, matching server.Handle.
	Mit *mitigation.State
	// KeepMemory asks for the final program memory in Result.Memory.
	// It is off by default because snapshotting costs an allocation
	// per request on the VM engine's hot path.
	KeepMemory bool
}

// Result is the observable outcome of one run.
type Result struct {
	// Clock is the run's total simulated time in cycles.
	Clock uint64
	// Steps is engine-granular work: language steps or instructions.
	Steps int
	// Trace holds the observable assignment events.
	Trace events.Trace
	// Mitigations holds the completed mitigation records.
	Mitigations events.MitTrace
	// Memory is the final program memory, when Request.KeepMemory.
	Memory *mem.Memory
}

// Engine runs requests for one program against one machine
// environment. Run returns budget.ErrStepLimit / budget.ErrCycleLimit
// (wrapped) on budget exhaustion and ctx.Err() on cancellation,
// whichever engine is behind it.
type Engine interface {
	// Name returns the engine's registered name ("tree", "vm").
	Name() string
	// Run executes one request. The returned Result struct is owned by
	// the engine and valid only until the next Run call; callers that
	// retain it across requests must copy it first. The slices and
	// memory it points to (Trace, Mitigations, Memory) are freshly
	// allocated per request and stay valid.
	Run(ctx context.Context, req Request) (*Result, error)
}

package exec

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/exec/budget"
	"repro/internal/lang/ast"
	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/progen"
	"repro/internal/sem/mem"
	"repro/internal/types"
)

// Differential tests: the "vm" engine must be observationally identical
// to the "tree" engine — same event traces (values AND times), same
// mitigation records, same final memory — on every corpus program. This
// is the acceptance bar for putting the VM on the service hot path: any
// divergence would change the leakage analysis, not just performance.

type checkedProg struct {
	name string
	prog *ast.Program
	res  *types.Result
	lat  lattice.Lattice
}

// loadTestdata parses and checks every testdata program, trying each
// built-in lattice until one accepts it.
func loadTestdata(t *testing.T) []checkedProg {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.tc"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs: %v", err)
	}
	lats := []lattice.Lattice{lattice.TwoPoint(), lattice.ThreePoint(), lattice.Diamond()}
	var out []checkedProg
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := parser.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		var added bool
		for _, lat := range lats {
			res, err := types.Check(prog, lat)
			if err != nil {
				continue
			}
			out = append(out, checkedProg{name: filepath.Base(f), prog: prog, res: res, lat: lat})
			added = true
			break
		}
		if !added {
			// Deliberately ill-typed corpus entries (e.g. insecure.tc)
			// have no dynamic semantics to difference.
			t.Logf("%s: does not type-check under any built-in lattice; skipped", f)
		}
	}
	if len(out) == 0 {
		t.Fatal("no checkable testdata programs")
	}
	return out
}

// randomSetup writes seeded random values to every declared variable,
// so engines are differenced on many input points, not just zeros.
func randomSetup(prog *ast.Program, seed int64) func(*mem.Memory) {
	return func(m *mem.Memory) {
		r := rand.New(rand.NewSource(seed))
		for _, d := range prog.Decls {
			if d.IsArray {
				for i := int64(0); i < d.Size; i++ {
					m.SetEl(d.Name, i, r.Int63n(1024))
				}
			} else {
				m.Set(d.Name, r.Int63n(1024))
			}
		}
	}
}

// runEngine runs one request on a freshly constructed engine over a
// fresh environment, so both sides of a difference start from an
// identical machine state.
func runEngine(t *testing.T, engine, hwName string, p checkedProg, opts Options, setup func(*mem.Memory)) *Result {
	t.Helper()
	env := hw.MustEnv(hwName, p.lat, hw.Table1Config())
	eng, err := NewEngine(engine, p.prog, p.res, env, opts)
	if err != nil {
		t.Fatalf("%s: NewEngine(%s): %v", p.name, engine, err)
	}
	r, err := eng.Run(context.Background(), Request{Setup: setup, KeepMemory: true})
	if err != nil {
		t.Fatalf("%s: %s run: %v", p.name, engine, err)
	}
	return r
}

func assertSameResult(t *testing.T, name string, tree, vm *Result) {
	t.Helper()
	if !tree.Trace.Equal(vm.Trace) {
		t.Errorf("%s: traces differ\ntree: %v\nvm:   %v", name, tree.Trace, vm.Trace)
	}
	if tree.Clock != vm.Clock {
		t.Errorf("%s: clocks differ: tree %d, vm %d", name, tree.Clock, vm.Clock)
	}
	if !reflect.DeepEqual(tree.Mitigations, vm.Mitigations) {
		t.Errorf("%s: mitigation records differ\ntree: %v\nvm:   %v",
			name, tree.Mitigations, vm.Mitigations)
	}
	if !tree.Memory.Equal(vm.Memory) {
		t.Errorf("%s: final memories differ", name)
	}
}

// optArms are the VM configurations every differential case compares
// against the tree engine: the stack interpreter and both levels of the
// optimizing pipeline. Identity must hold per arm AND between arms.
var optArms = []struct {
	name string
	opts Options
}{
	{"vm-o0", Options{OptSet: true, OptLevel: 0}},
	{"vm-o1", Options{OptSet: true, OptLevel: 1}},
	{"vm-o2", Options{OptSet: true, OptLevel: 2}},
}

func TestEnginesDifferentialTestdata(t *testing.T) {
	hwNames := []string{"partitioned", "nopar", "flat"}
	for _, p := range loadTestdata(t) {
		for _, hwName := range hwNames {
			for seed := int64(0); seed < 3; seed++ {
				setup := randomSetup(p.prog, seed)
				tree := runEngine(t, "tree", hwName, p, Options{}, setup)
				for _, arm := range optArms {
					vm := runEngine(t, "vm", hwName, p, arm.opts, setup)
					assertSameResult(t, p.name+"/"+hwName+"/"+arm.name, tree, vm)
				}
			}
		}
	}
}

func TestEnginesDifferentialProgen(t *testing.T) {
	const n = 100
	hwNames := []string{"partitioned", "nopar", "flat"}
	for i := 0; i < n; i++ {
		cfg := progen.Config{
			Lat:           lattice.TwoPoint(),
			Seed:          int64(i),
			AllowMitigate: i%2 == 0,
			AllowSleep:    i%3 != 0,
		}
		prog, res, src, err := progen.GenerateTyped(cfg, 50)
		if err != nil {
			t.Fatalf("progen seed %d: %v", i, err)
		}
		p := checkedProg{name: "progen-" + string(rune('0'+i%10)), prog: prog, res: res, lat: cfg.Lat}
		setup := randomSetup(prog, int64(i))
		for _, hwName := range hwNames {
			tree := runEngine(t, "tree", hwName, p, Options{}, setup)
			for _, arm := range optArms {
				vm := runEngine(t, "vm", hwName, p, arm.opts, setup)
				assertSameResult(t, p.name+"/"+hwName+"/"+arm.name, tree, vm)
			}
			if t.Failed() {
				t.Fatalf("progen seed %d diverged on %s; source:\n%s", i, hwName, src)
			}
		}
	}
}

// TestEnginesLeakageBoundEquality checks that both engines induce the
// same leakage partition: running the mitigated server program over a
// range of secrets, every secret produces the same trace under both
// engines, hence the same number of distinct observations (the
// measured channel capacity).
func TestEnginesLeakageBoundEquality(t *testing.T) {
	const src = `
var h: H;
var reply: L;
mitigate (1, H) [L, L] {
    sleep(h % 300) [H, H];
}
reply := 1;
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	lat := lattice.TwoPoint()
	res, err := types.Check(prog, lat)
	if err != nil {
		t.Fatal(err)
	}
	p := checkedProg{name: "leakage", prog: prog, res: res, lat: lat}
	distinctTree := map[string]bool{}
	distinctVM := map[string]bool{}
	for secret := int64(0); secret < 64; secret++ {
		setup := func(m *mem.Memory) { m.Set("h", secret) }
		tree := runEngine(t, "tree", "partitioned", p, Options{}, setup)
		vm := runEngine(t, "vm", "partitioned", p, Options{}, setup)
		assertSameResult(t, p.name, tree, vm)
		distinctTree[tree.Trace.Key()] = true
		distinctVM[vm.Trace.Key()] = true
	}
	if len(distinctTree) != len(distinctVM) {
		t.Errorf("leakage bounds differ: tree %d distinct traces, vm %d",
			len(distinctTree), len(distinctVM))
	}
}

// TestEngineBudgetErrorParity checks that both engines report budget
// exhaustion and cancellation with the same shared sentinels.
func TestEngineBudgetErrorParity(t *testing.T) {
	const src = `
var x: L;
x := 0;
while (x < 1000000) [L, L] {
    x := x + 1;
}
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	lat := lattice.TwoPoint()
	res, err := types.Check(prog, lat)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{"tree", "vm"} {
		// Step budget.
		env := hw.MustEnv("flat", lat, hw.TinyConfig())
		eng, err := NewEngine(engine, prog, res, env, Options{Limits: Limits{MaxSteps: 50}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(context.Background(), Request{}); !errors.Is(err, budget.ErrStepLimit) {
			t.Errorf("%s: step budget: got %v, want ErrStepLimit", engine, err)
		}

		// Cycle budget.
		env = hw.MustEnv("flat", lat, hw.TinyConfig())
		eng, err = NewEngine(engine, prog, res, env, Options{Limits: Limits{MaxCycles: 100}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(context.Background(), Request{}); !errors.Is(err, budget.ErrCycleLimit) {
			t.Errorf("%s: cycle budget: got %v, want ErrCycleLimit", engine, err)
		}

		// Cancellation.
		env = hw.MustEnv("flat", lat, hw.TinyConfig())
		eng, err = NewEngine(engine, prog, res, env, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := eng.Run(ctx, Request{}); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: cancellation: got %v, want context.Canceled", engine, err)
		}
	}
}

// TestEngineCostSetParity checks the zero-value trap fix end to end: an
// explicit BaseCost/OpCost of zero must be honored by both engines and
// still produce identical traces.
func TestEngineCostSetParity(t *testing.T) {
	const src = `
var l: L;
l := 3 + 4 * 2;
sleep(l % 7) [L, L];
l := l + 1;
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	lat := lattice.TwoPoint()
	res, err := types.Check(prog, lat)
	if err != nil {
		t.Fatal(err)
	}
	p := checkedProg{name: "costset", prog: prog, res: res, lat: lat}
	opts := Options{CostSet: true, BaseCost: 0, OpCost: 0}
	setup := func(m *mem.Memory) { m.Set("l", 0) }
	tree := runEngine(t, "tree", "flat", p, opts, setup)
	vm := runEngine(t, "vm", "flat", p, opts, setup)
	assertSameResult(t, p.name, tree, vm)
	withDefaults := runEngine(t, "tree", "flat", p, Options{}, setup)
	if tree.Clock >= withDefaults.Clock {
		t.Errorf("explicit zero costs not honored: clock %d with CostSet, %d with defaults",
			tree.Clock, withDefaults.Clock)
	}
}

func TestEngineRegistry(t *testing.T) {
	names := EngineNames()
	want := map[string]bool{"tree": false, "vm": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("EngineNames() missing %q: %v", n, names)
		}
	}
	prog, err := parser.Parse("var x: L;\nx := 1;\n")
	if err != nil {
		t.Fatal(err)
	}
	lat := lattice.TwoPoint()
	res, err := types.Check(prog, lat)
	if err != nil {
		t.Fatal(err)
	}
	env := hw.MustEnv("flat", lat, hw.TinyConfig())
	if _, err := NewEngine("bogus", prog, res, env, Options{}); err == nil {
		t.Error("NewEngine(bogus) succeeded, want error")
	}
	eng, err := NewEngine("", prog, res, env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Name() != "tree" {
		t.Errorf("empty engine name resolved to %q, want tree", eng.Name())
	}
}

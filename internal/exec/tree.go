package exec

import (
	"context"

	"repro/internal/lang/ast"
	"repro/internal/machine/hw"
	"repro/internal/sem/full"
	"repro/internal/types"
)

// TreeEngine runs requests through the tree-walking full semantics —
// the reference implementation. Every request builds a fresh
// full.Machine (re-walking the AST), which keeps it the simplest
// possible engine and the baseline the VM engine is differenced
// against.
type TreeEngine struct {
	prog   *ast.Program
	res    *types.Result
	env    hw.Env
	opts   Options
	lim    Limits // resolved once at construction from opts.Limits
	result Result // reused across Run calls (see Engine contract)
}

// newTreeEngine is the registered factory for "tree". It builds one
// throwaway machine to validate the program up front.
func newTreeEngine(prog *ast.Program, res *types.Result, env hw.Env, opts Options) (Engine, error) {
	if _, err := full.New(prog, res, env, treeOptions(opts)); err != nil {
		return nil, err
	}
	return &TreeEngine{prog: prog, res: res, env: env, opts: opts, lim: opts.Limits}, nil
}

func treeOptions(opts Options) full.Options {
	return full.Options{
		BaseCost:          opts.BaseCost,
		OpCost:            opts.OpCost,
		CostSet:           opts.CostSet,
		Scheme:            opts.Scheme,
		Policy:            opts.Policy,
		DisableMitigation: opts.DisableMitigation,
		Metrics:           opts.Metrics,
	}
}

// Name implements Engine.
func (e *TreeEngine) Name() string { return "tree" }

// Run implements Engine.
func (e *TreeEngine) Run(ctx context.Context, req Request) (*Result, error) {
	if err := e.opts.injectRun(); err != nil {
		return nil, err
	}
	ctx, cancel := e.lim.Bound(ctx)
	defer cancel()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m, err := full.New(e.prog, e.res, e.env, treeOptions(e.opts))
	if err != nil {
		return nil, err
	}
	if req.Mit != nil {
		req.Mit.CopyInto(m.MitigationState())
	}
	if req.Setup != nil {
		req.Setup(m.Memory())
	}
	if err := m.RunBudget(ctx, e.lim.AsBudget()); err != nil {
		return nil, err
	}
	if req.Mit != nil {
		m.MitigationState().CopyInto(req.Mit)
	}
	e.result = Result{
		Clock:       m.Clock() + e.opts.injectClock(),
		Steps:       m.Steps(),
		Trace:       m.Trace(),
		Mitigations: m.Mitigations(),
	}
	if req.KeepMemory {
		e.result.Memory = m.Memory()
	}
	return &e.result, nil
}

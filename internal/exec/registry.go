package exec

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/lang/ast"
	"repro/internal/machine/hw"
	"repro/internal/types"
)

// Factory constructs an engine for one type-checked program over one
// machine environment. Construction may do per-program work (the VM
// engine compiles, or fetches from the program cache) and validates the
// program, so a broken program fails at engine construction rather than
// per request.
type Factory func(prog *ast.Program, res *types.Result, env hw.Env, opts Options) (Engine, error)

// The registry maps engine names to factories, mirroring hw's
// environment registry. Built-ins "tree" and "vm" are registered
// below; tests and future backends can add their own.
var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

func init() {
	MustRegister("tree", newTreeEngine)
	MustRegister("vm", newVMEngine)
}

// Register adds a named engine factory. It reports an error when the
// name is already taken.
func Register(name string, f Factory) error {
	if name == "" || f == nil {
		return fmt.Errorf("exec: Register needs a non-empty name and factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("exec: engine %q already registered", name)
	}
	registry[name] = f
	return nil
}

// MustRegister is Register, panicking on error; for init-time use.
func MustRegister(name string, f Factory) {
	if err := Register(name, f); err != nil {
		panic(err)
	}
}

// NewEngine constructs a registered engine by name. The empty name
// selects "tree", the reference implementation.
func NewEngine(name string, prog *ast.Program, res *types.Result, env hw.Env, opts Options) (Engine, error) {
	if name == "" {
		name = "tree"
	}
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("exec: unknown engine %q (want one of %v)", name, EngineNames())
	}
	if err := opts.Limits.Validate(); err != nil {
		return nil, err
	}
	return f(prog, res, env, opts)
}

// EngineNames lists the registered engine names, sorted.
func EngineNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

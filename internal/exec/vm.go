package exec

import (
	"context"
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/fault"
	"repro/internal/lang/ast"
	"repro/internal/machine/hw"
	"repro/internal/sem/mem"
	"repro/internal/types"
)

// VMEngine runs requests on the bytecode VM in tree-compatible timing
// mode (bytecode.TimingTree): identical traces to the tree engine,
// without re-walking the AST per step. The program is compiled once —
// through the shared DefaultCache, so pool shards serving the same
// source compile it once between them — and the VM and its scratch
// memory are reused across requests, which is where the service-path
// speedup comes from.
type VMEngine struct {
	prog    *bytecode.Program
	src     *ast.Program
	vm      *bytecode.VM
	opts    Options
	lim     Limits // resolved once at construction from opts.Limits
	scratch *mem.Memory
	used    bool
	result  Result // reused across Run calls (see Engine contract)
}

// newVMEngine is the registered factory for "vm".
func newVMEngine(prog *ast.Program, res *types.Result, env hw.Env, opts Options) (Engine, error) {
	if f, ok := opts.Injector.Fire(fault.CacheFactory, opts.Shard); ok {
		// A failed cache population (corrupt artifact store, racing
		// deploy) surfaces at construction, before any machine exists.
		if opts.Metrics != nil {
			opts.Metrics.AddFault()
		}
		return nil, f.Err
	}
	bp, err := DefaultCache.Get(prog, res, opts.EffectiveOptLevel())
	if err != nil {
		return nil, err
	}
	vm := bytecode.NewVM(bp, env, bytecode.VMOptions{
		Timing:            bytecode.TimingTree,
		BaseCost:          opts.BaseCost,
		OpCost:            opts.OpCost,
		CostSet:           opts.CostSet,
		Scheme:            opts.Scheme,
		Policy:            opts.Policy,
		DisableMitigation: opts.DisableMitigation,
		Metrics:           opts.Metrics,
	})
	// The scratch memory aliases the VM's own storage: request setup
	// writes machine state directly with no copy pass, and the VM's
	// Reset (which zeroes its scalars and arrays) doubles as the
	// scratch reset. Scalar slot order must agree (both sides assign
	// slots in declaration order; verified here against the compiled
	// name table).
	scratch := mem.New(prog)
	for i, name := range bp.ScalarNames {
		if scratch.ScalarSlot(name) != i {
			return nil, fmt.Errorf("exec: scalar %q slot mismatch between memory and bytecode", name)
		}
	}
	scratch.AliasScalars(vm.ScalarStorage())
	for i, name := range bp.ArrayNames {
		scratch.AliasArray(name, vm.ArrayStorage(i))
	}
	return &VMEngine{
		prog:    bp,
		src:     prog,
		vm:      vm,
		opts:    opts,
		lim:     opts.Limits,
		scratch: scratch,
	}, nil
}

// Name implements Engine.
func (e *VMEngine) Name() string { return "vm" }

// Run implements Engine.
func (e *VMEngine) Run(ctx context.Context, req Request) (*Result, error) {
	if err := e.opts.injectRun(); err != nil {
		return nil, err
	}
	ctx, cancel := e.lim.Bound(ctx)
	defer cancel()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e.used {
		// Reset zeroes the VM's scalars and arrays — which IS the
		// scratch memory's storage (aliased at construction).
		e.vm.Reset()
	}
	e.used = true
	if req.Mit != nil {
		req.Mit.CopyInto(e.vm.MitigationState())
	}
	if req.Setup != nil {
		// Setup writes land directly in VM storage via the aliases.
		req.Setup(e.scratch)
	}
	if err := e.vm.RunBudget(ctx, e.lim.AsBudget()); err != nil {
		return nil, err
	}
	if req.Mit != nil {
		e.vm.MitigationState().CopyInto(req.Mit)
	}
	// Reset replaces the VM's trace slices rather than truncating them,
	// so handing them out does not alias the next request's.
	e.result = Result{
		Clock:       e.vm.Clock() + e.opts.injectClock(),
		Steps:       e.vm.Steps(),
		Trace:       e.vm.Trace(),
		Mitigations: e.vm.Mitigations(),
	}
	if req.KeepMemory {
		m := mem.New(e.src)
		e.vm.StoreTo(m)
		e.result.Memory = m
	}
	return &e.result, nil
}

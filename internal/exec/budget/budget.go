// Package budget defines the execution-budget vocabulary shared by
// every language implementation: the Budget struct bounding one run and
// the sentinel errors reported when a bound is exceeded.
//
// Both the tree-walking interpreter (sem/full) and the bytecode VM
// (bytecode) return these sentinels, so callers — most importantly the
// service layer — can match budget exhaustion with a single errors.Is
// regardless of which engine executed the request. The packages keep
// deprecated aliases (full.ErrStepLimit, bytecode.ErrStepLimit) for one
// release.
package budget

import "errors"

// ErrStepLimit is returned when a run exceeds its step budget. Steps
// are engine-granular: language-level steps for the tree-walking
// semantics, instructions for the bytecode VM.
var ErrStepLimit = errors.New("exec: step limit exceeded")

// ErrCycleLimit is returned when a run exceeds its simulated-cycle
// budget. Cycles are engine-independent simulated time, so a cycle
// budget means the same thing to every engine.
var ErrCycleLimit = errors.New("exec: cycle limit exceeded")

// Budget bounds one run. Zero fields are unlimited.
type Budget struct {
	// MaxSteps bounds engine steps (ErrStepLimit past it).
	MaxSteps int
	// MaxCycles bounds the simulated clock (ErrCycleLimit past it).
	MaxCycles uint64
}

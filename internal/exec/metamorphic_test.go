package exec

// Metamorphic tests over generated programs: relations that must hold
// between two executions regardless of what the program computes.
// Unlike the differential tests (tree vs vm on hand-written programs),
// these sample the program space with progen and pin two service-level
// guarantees: engines are deterministic (same program, same inputs,
// same environment ⇒ identical traces and clocks), and the program
// cache is transparent (an engine built from a cache hit behaves
// byte-identically to the cold-compile engine).

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/progen"
)

// runSequence executes n requests on a fresh engine and returns the
// observed (clock, trace) sequence.
type runObs struct {
	Clock uint64
	Steps int
	Trace string
}

func runSequence(t *testing.T, engine string, seed int64, n int) []runObs {
	t.Helper()
	lat := lattice.TwoPoint()
	prog, res, src, err := progen.GenerateTyped(progen.Config{
		Lat:           lat,
		Seed:          seed,
		AllowMitigate: true,
		AllowSleep:    true,
	}, 50)
	if err != nil {
		t.Fatalf("seed %d: no well-typed program: %v", seed, err)
	}
	env := hw.NewFlat(lat, 2)
	e, err := NewEngine(engine, prog, res, env, Options{})
	if err != nil {
		t.Fatalf("seed %d: NewEngine(%s): %v\nprogram:\n%s", seed, engine, err, src)
	}
	out := make([]runObs, n)
	for i := range out {
		r, err := e.Run(context.Background(), Request{})
		if err != nil {
			t.Fatalf("seed %d: %s run %d: %v\nprogram:\n%s", seed, engine, i, err, src)
		}
		out[i] = runObs{Clock: r.Clock, Steps: r.Steps, Trace: fmt.Sprintf("%v", r.Trace)}
	}
	return out
}

func TestMetamorphic(t *testing.T) {
	const programs = 8
	const requests = 3
	for _, engine := range []string{"tree", "vm"} {
		engine := engine
		t.Run(engine+"/determinism", func(t *testing.T) {
			// Same program, fresh engine, fresh environment: the two
			// observation sequences must be identical — the property the
			// chaos suite's off-path check builds on.
			for seed := int64(1); seed <= programs; seed++ {
				a := runSequence(t, engine, seed, requests)
				b := runSequence(t, engine, seed, requests)
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("seed %d: engine %s diverged between identical runs:\n first: %+v\nsecond: %+v",
						seed, engine, a, b)
				}
			}
		})
	}
	t.Run("vm/cache-transparency", func(t *testing.T) {
		// The first runSequence compiles each program into DefaultCache;
		// the second constructs its engines from cache hits. A cache that
		// returned a stale or corrupted compilation would diverge here.
		// The seed range is disjoint from the determinism subtest's so
		// the first run really is a cold compile.
		for seed := int64(101); seed <= 100+programs; seed++ {
			cold := runSequence(t, "vm", seed, requests)
			hit := runSequence(t, "vm", seed, requests)
			if !reflect.DeepEqual(cold, hit) {
				t.Fatalf("seed %d: cache-hit engine diverged from cold engine:\n cold: %+v\n  hit: %+v",
					seed, cold, hit)
			}
		}
	})
}

package exec

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/lang/ast"
	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/types"
)

// mustCheck parses and type-checks source under the two-point lattice.
func mustCheck(t *testing.T, src string) (*ast.Program, *types.Result) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := types.Check(prog, lattice.TwoPoint())
	if err != nil {
		t.Fatal(err)
	}
	return prog, res
}

// numberedProg returns a distinct trivial program per i, so tests can
// fill a cache with unique keys.
func numberedProg(t *testing.T, i int) (*ast.Program, *types.Result) {
	t.Helper()
	return mustCheck(t, fmt.Sprintf("var x: L;\nx := %d;\n", i))
}

func TestProgramCacheHitSharesProgram(t *testing.T) {
	c := NewProgramCache(4)
	prog, res := numberedProg(t, 1)
	first, err := c.Get(prog, res, DefaultOptLevel)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Get(prog, res, DefaultOptLevel)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("cache hit returned a different *Program than the cold compile")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses; want 1, 1", hits, misses)
	}
}

func TestProgramCacheKeyDependsOnLattice(t *testing.T) {
	// The same surface syntax checked under different lattices must not
	// collide: labels resolve to different lattice elements.
	src := "var x: L;\nx := 1;\n"
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	resTwo, err := types.Check(prog, lattice.TwoPoint())
	if err != nil {
		t.Fatal(err)
	}
	prog3, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	resThree, err := types.Check(prog3, lattice.ThreePoint())
	if err != nil {
		t.Fatal(err)
	}
	if Key(prog, resTwo) == Key(prog3, resThree) {
		t.Error("cache keys collide across lattices")
	}
}

func TestProgramCacheEviction(t *testing.T) {
	c := NewProgramCache(2)
	progs := make([]*ast.Program, 3)
	ress := make([]*types.Result, 3)
	for i := range progs {
		progs[i], ress[i] = numberedProg(t, i)
		if _, err := c.Get(progs[i], ress[i], DefaultOptLevel); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len() = %d after 3 inserts into cap-2 cache, want 2", c.Len())
	}
	// Program 0 was least recently used and must have been evicted:
	// re-getting it is a miss; 2 and 1 are still resident (hits).
	_, missesBefore := c.Stats()
	if _, err := c.Get(progs[2], ress[2], DefaultOptLevel); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(progs[1], ress[1], DefaultOptLevel); err != nil {
		t.Fatal(err)
	}
	_, misses := c.Stats()
	if misses != missesBefore {
		t.Errorf("resident entries missed: %d -> %d", missesBefore, misses)
	}
	if _, err := c.Get(progs[0], ress[0], DefaultOptLevel); err != nil {
		t.Fatal(err)
	}
	_, misses = c.Stats()
	if misses != missesBefore+1 {
		t.Errorf("evicted entry did not miss: misses %d, want %d", misses, missesBefore+1)
	}
	// LRU order after the touches above: 1 (MRU), 2... inserting 0
	// evicted the back. The cache never exceeds capacity.
	if c.Len() != 2 {
		t.Errorf("Len() = %d, want 2", c.Len())
	}
}

// TestProgramCacheKeyIncludesOptLevel is the regression test for a
// stale-artifact bug: the optimization level changes the compiled
// output (Program.Opt), so it must be part of the cache key. Before the
// fix, toggling -opt on a warm cache served the other level's program.
func TestProgramCacheKeyIncludesOptLevel(t *testing.T) {
	c := NewProgramCache(8)
	prog, res := mustCheck(t, "var x: L;\nvar y: L;\nx := 3;\ny := x + 1;\n")
	unopt, err := c.Get(prog, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if unopt.Opt != nil {
		t.Fatal("level 0 produced an optimized program")
	}
	opt, err := c.Get(prog, res, 2)
	if err != nil {
		t.Fatal(err)
	}
	if opt == unopt {
		t.Fatal("level 2 served the level-0 entry (stale artifact)")
	}
	if opt.Opt == nil || opt.Opt.Level != 2 {
		t.Fatalf("level 2 entry carries Opt = %+v", opt.Opt)
	}
	// Each level is its own resident entry: re-getting both must hit.
	_, missesBefore := c.Stats()
	again0, err := c.Get(prog, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	again2, err := c.Get(prog, res, 2)
	if err != nil {
		t.Fatal(err)
	}
	if again0 != unopt || again2 != opt {
		t.Error("per-level entries not shared on hit")
	}
	if _, misses := c.Stats(); misses != missesBefore {
		t.Errorf("re-gets missed: %d -> %d", missesBefore, misses)
	}
}

// TestProgramCacheConcurrent hammers one cache from many goroutines
// (as pool shards do via DefaultCache); run under -race this checks
// the locking discipline.
func TestProgramCacheConcurrent(t *testing.T) {
	c := NewProgramCache(4)
	const goroutines = 8
	progs := make([]*ast.Program, 6)
	ress := make([]*types.Result, 6)
	for i := range progs {
		progs[i], ress[i] = numberedProg(t, i)
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (g + i) % len(progs)
				if _, err := c.Get(progs[k], ress[k], DefaultOptLevel); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if c.Len() > 4 {
		t.Errorf("cache exceeded capacity: %d", c.Len())
	}
}

// TestProgramCacheDeterminism: a cache hit and a cold compile must
// produce byte-identical traces — caching is a pure lookup, never an
// observable change.
func TestProgramCacheDeterminism(t *testing.T) {
	const src = `
var h: H;
var reply: L;
mitigate (1, H) [L, L] {
    sleep(h % 37) [H, H];
}
reply := 1;
`
	prog, res := mustCheck(t, src)
	lat := lattice.TwoPoint()

	c := NewProgramCache(4)
	cold, err := c.Get(prog, res, DefaultOptLevel)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := c.Get(prog, res, DefaultOptLevel)
	if err != nil {
		t.Fatal(err)
	}
	if cold != hit {
		t.Fatal("hit returned a different program")
	}
	// Also compile completely outside the cache for the cold baseline.
	fresh, err := bytecode.Compile(prog, res)
	if err != nil {
		t.Fatal(err)
	}
	run := func(p *bytecode.Program) (string, uint64) {
		env := hw.MustEnv("partitioned", lat, hw.Table1Config())
		vm := bytecode.NewVM(p, env, bytecode.VMOptions{Timing: bytecode.TimingTree})
		if err := vm.SetScalar("h", 23); err != nil {
			t.Fatal(err)
		}
		if err := vm.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		return vm.Trace().Key(), vm.Clock()
	}
	keyCached, clockCached := run(hit)
	keyFresh, clockFresh := run(fresh)
	if keyCached != keyFresh || clockCached != clockFresh {
		t.Errorf("cache hit and cold compile diverge: (%q, %d) vs (%q, %d)",
			keyCached, clockCached, keyFresh, clockFresh)
	}
}

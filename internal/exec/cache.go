package exec

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/bytecode"
	"repro/internal/bytecode/optimize"
	"repro/internal/lang/ast"
	"repro/internal/lang/printer"
	"repro/internal/types"
)

// ProgramCache is a concurrency-safe LRU cache of compiled bytecode
// programs, keyed by source hash, so many engines (e.g. one per pool
// shard) serving the same program compile it once and execute many.
//
// Compiled programs are immutable after compilation — the VM keeps all
// mutable state (registers, data, clock) in itself — so one *Program
// can safely back any number of VMs.
//
// The hit path is lock-free: the key map is copy-on-write behind an
// atomic pointer, and recency is a per-entry atomic timestamp from a
// global logical clock, so concurrent workers compiling-once/
// running-many never contend. Only misses (compile + map rebuild +
// eviction) take the writer mutex.
type ProgramCache struct {
	// entries is the COW key map; Get loads it without locking.
	entries atomic.Pointer[map[string]*cacheEntry]
	// mu serializes map rebuilds (insertions and evictions).
	mu  sync.Mutex
	cap int
	// clock is the logical recency clock; every touch stamps its entry.
	clock  atomic.Uint64
	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheEntry struct {
	key  string
	prog *bytecode.Program
	// used is the entry's last-touch stamp from the cache clock. Two
	// racing hits may store slightly out of order, which perturbs LRU
	// by at most the race window — eviction (under mu) sees a settled
	// view in the single-writer case the tests pin down.
	used atomic.Uint64
}

// NewProgramCache creates a cache holding at most capacity programs
// (minimum 1).
func NewProgramCache(capacity int) *ProgramCache {
	if capacity < 1 {
		capacity = 1
	}
	c := &ProgramCache{cap: capacity}
	m := make(map[string]*cacheEntry)
	c.entries.Store(&m)
	return c
}

// DefaultCache is the process-wide cache used by the "vm" engine
// factory. Its capacity comfortably exceeds the number of distinct
// programs any one service deployment runs.
var DefaultCache = NewProgramCache(128)

// Key returns the cache key for a type-checked program: a hash of the
// fully-resolved printed source plus the lattice name. Printing with
// resolved labels makes the key depend on the label assignment, not
// just the surface syntax, so two checks of the same source under
// different lattices or inference outcomes never collide.
func Key(prog *ast.Program, res *types.Result) string {
	h := sha256.New()
	h.Write([]byte(printer.Print(prog, printer.Options{ShowResolved: true})))
	h.Write([]byte{0})
	h.Write([]byte(res.Lat.Name()))
	return hex.EncodeToString(h.Sum(nil))
}

// touch refreshes an entry's recency and counts the hit.
func (c *ProgramCache) touch(e *cacheEntry) *bytecode.Program {
	e.used.Store(c.clock.Add(1))
	c.hits.Add(1)
	return e.prog
}

// Get returns the compiled program for (prog, res) at the given
// optimization level, compiling and caching it on a miss and evicting
// the least recently used entry past capacity. Hits never block: they
// read the current map snapshot and bump the entry's recency stamp
// atomically.
//
// The optimization level is part of the cache key — it changes the
// compiled artifact (Program.Opt), so entries at different levels must
// never be conflated: a server toggling -opt, or two experiment arms
// sharing DefaultCache at different levels, would otherwise serve each
// other stale compiled output. Any future knob that alters what Get
// compiles must join the key the same way.
func (c *ProgramCache) Get(prog *ast.Program, res *types.Result, optLevel int) (*bytecode.Program, error) {
	key := Key(prog, res) + ":o" + strconv.Itoa(optLevel)
	if e, ok := (*c.entries.Load())[key]; ok {
		return c.touch(e), nil
	}

	// Compile outside the lock: compilation is pure, so two shards
	// racing on the same cold key at worst compile twice and converge
	// on whichever entry lands first.
	compiled, err := bytecode.Compile(prog, res)
	if err != nil {
		return nil, err
	}
	if optLevel > 0 {
		op, oerr := optimize.Compile(compiled, optLevel)
		if oerr != nil && !errors.Is(oerr, optimize.ErrUnsupported) {
			return nil, oerr
		}
		// ErrUnsupported falls back to the unoptimized program: the
		// entry is still cached under the leveled key so the fallback
		// decision is made once, not per miss.
		compiled.Opt = op
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	cur := *c.entries.Load()
	if e, ok := cur[key]; ok {
		// Lost the race; keep the incumbent so all callers share one
		// program.
		return c.touch(e), nil
	}
	c.misses.Add(1)
	next := make(map[string]*cacheEntry, len(cur)+1)
	for k, e := range cur {
		next[k] = e
	}
	e := &cacheEntry{key: key, prog: compiled}
	e.used.Store(c.clock.Add(1))
	next[key] = e
	for len(next) > c.cap {
		var oldest *cacheEntry
		for _, cand := range next {
			if oldest == nil || cand.used.Load() < oldest.used.Load() {
				oldest = cand
			}
		}
		delete(next, oldest.key)
	}
	c.entries.Store(&next)
	return compiled, nil
}

// Len returns the number of cached programs.
func (c *ProgramCache) Len() int { return len(*c.entries.Load()) }

// Stats returns cumulative hit and miss counts.
func (c *ProgramCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

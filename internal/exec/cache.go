package exec

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"repro/internal/bytecode"
	"repro/internal/lang/ast"
	"repro/internal/lang/printer"
	"repro/internal/types"
)

// ProgramCache is a concurrency-safe LRU cache of compiled bytecode
// programs, keyed by source hash, so many engines (e.g. one per pool
// shard) serving the same program compile it once and execute many.
//
// Compiled programs are immutable after compilation — the VM keeps all
// mutable state (registers, data, clock) in itself — so one *Program
// can safely back any number of VMs.
type ProgramCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key  string
	prog *bytecode.Program
}

// NewProgramCache creates a cache holding at most capacity programs
// (minimum 1).
func NewProgramCache(capacity int) *ProgramCache {
	if capacity < 1 {
		capacity = 1
	}
	return &ProgramCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// DefaultCache is the process-wide cache used by the "vm" engine
// factory. Its capacity comfortably exceeds the number of distinct
// programs any one service deployment runs.
var DefaultCache = NewProgramCache(128)

// Key returns the cache key for a type-checked program: a hash of the
// fully-resolved printed source plus the lattice name. Printing with
// resolved labels makes the key depend on the label assignment, not
// just the surface syntax, so two checks of the same source under
// different lattices or inference outcomes never collide.
func Key(prog *ast.Program, res *types.Result) string {
	h := sha256.New()
	h.Write([]byte(printer.Print(prog, printer.Options{ShowResolved: true})))
	h.Write([]byte{0})
	h.Write([]byte(res.Lat.Name()))
	return hex.EncodeToString(h.Sum(nil))
}

// Get returns the compiled program for (prog, res), compiling and
// caching it on a miss and evicting the least recently used entry past
// capacity.
func (c *ProgramCache) Get(prog *ast.Program, res *types.Result) (*bytecode.Program, error) {
	key := Key(prog, res)
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		p := el.Value.(*cacheEntry).prog
		c.mu.Unlock()
		return p, nil
	}
	c.mu.Unlock()

	// Compile outside the lock: compilation is pure, so two shards
	// racing on the same cold key at worst compile twice and converge
	// on whichever entry lands first.
	compiled, err := bytecode.Compile(prog, res)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Lost the race; keep the incumbent so all callers share one
		// program.
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).prog, nil
	}
	c.misses++
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, prog: compiled})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	return compiled, nil
}

// Len returns the number of cached programs.
func (c *ProgramCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit and miss counts.
func (c *ProgramCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

package exec

import (
	"context"
	"testing"

	"repro/internal/apps/login"
	"repro/internal/apps/rsa"
	"repro/internal/bytecode"
	"repro/internal/lang/ast"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/sem/mem"
	"repro/internal/types"
)

// BenchmarkEngine* compare the tree-walking engine against the VM
// engine (compiled once via the program cache, machine reused) on the
// paper's two case-study applications. The simulated cycle counts are
// identical by construction (differential tests); what differs is host
// time per request — the service hot path.

func benchEngine(b *testing.B, engine string, prog *ast.Program, res *types.Result,
	lat lattice.Lattice, setup func(*mem.Memory)) {
	b.Helper()
	env := hw.MustEnv("partitioned", lat, hw.Table1Config())
	eng, err := NewEngine(engine, prog, res, env, Options{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(ctx, Request{Setup: setup}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)*1e6, "us/req")
}

func BenchmarkEngineLogin(b *testing.B) {
	lat := lattice.TwoPoint()
	app, err := login.Build(login.Config{TableSize: 32, WorkFactor: 96, WorkTableSize: 512}, lat)
	if err != nil {
		b.Fatal(err)
	}
	creds := login.MakeCredentials(16)
	att := login.Attempt{User: creds[3].User, Pass: creds[3].Pass}
	setup := func(m *mem.Memory) { app.Setup(m, creds, att, 1, 1) }
	for _, engine := range []string{"tree", "vm"} {
		b.Run(engine, func(b *testing.B) {
			benchEngine(b, engine, app.Prog, app.Res, lat, setup)
		})
	}
}

func BenchmarkEngineRSA(b *testing.B) {
	lat := lattice.TwoPoint()
	app, err := rsa.Build(rsa.Config{MaxBlocks: 4, Modulus: 1000003}, rsa.LanguageLevel, lat)
	if err != nil {
		b.Fatal(err)
	}
	msg := rsa.Message(3, 5)
	setup := func(m *mem.Memory) { app.Setup(m, 0x7FFF00FF, msg, 256) }
	for _, engine := range []string{"tree", "vm"} {
		b.Run(engine, func(b *testing.B) {
			benchEngine(b, engine, app.Prog, app.Res, lat, setup)
		})
	}
}

// BenchmarkEngineVMColdCompile measures the cost the cache removes: a
// full compile + fresh VM per request, against the login workload.
// Compare with BenchmarkEngineLogin/vm to see the amortization.
func BenchmarkEngineVMColdCompile(b *testing.B) {
	lat := lattice.TwoPoint()
	app, err := login.Build(login.Config{TableSize: 32, WorkFactor: 96, WorkTableSize: 512}, lat)
	if err != nil {
		b.Fatal(err)
	}
	creds := login.MakeCredentials(16)
	att := login.Attempt{User: creds[3].User, Pass: creds[3].Pass}
	env := hw.MustEnv("partitioned", lat, hw.Table1Config())
	m := mem.New(app.Prog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc, err := bytecode.Compile(app.Prog, app.Res)
		if err != nil {
			b.Fatal(err)
		}
		vm := bytecode.NewVM(bc, env, bytecode.VMOptions{Timing: bytecode.TimingTree})
		m.Zero()
		app.Setup(m, creds, att, 1, 1)
		vm.LoadFrom(m)
		if err := vm.Run(10_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProgramCache measures the cache's hit path in isolation.
func BenchmarkProgramCache(b *testing.B) {
	lat := lattice.TwoPoint()
	app, err := login.Build(login.Config{TableSize: 32, WorkFactor: 96, WorkTableSize: 512}, lat)
	if err != nil {
		b.Fatal(err)
	}
	c := NewProgramCache(8)
	if _, err := c.Get(app.Prog, app.Res, DefaultOptLevel); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get(app.Prog, app.Res, DefaultOptLevel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProgramCacheParallel hammers the hit path from concurrent
// goroutines — the pool-shard pattern. With the copy-on-write map the
// hit path takes no lock, so this should track the serial benchmark
// instead of collapsing onto a mutex.
func BenchmarkProgramCacheParallel(b *testing.B) {
	lat := lattice.TwoPoint()
	app, err := login.Build(login.Config{TableSize: 32, WorkFactor: 96, WorkTableSize: 512}, lat)
	if err != nil {
		b.Fatal(err)
	}
	c := NewProgramCache(8)
	if _, err := c.Get(app.Prog, app.Res, DefaultOptLevel); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Get(app.Prog, app.Res, DefaultOptLevel); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Package opt implements timing-aware compiler optimizations over the
// language AST: constant folding and constant-branch elimination.
//
// Optimizations interact with the paper's model in a specific way:
// they may freely CHANGE a program's timing (timing belongs to the
// language implementation, which the machine-environment contract
// abstracts), but they must preserve
//
//  1. the core semantics — same final memory and same observable event
//     values (checked against the unoptimized program over generated
//     inputs in the tests), and
//  2. typability — the optimized program must still type-check, with
//     labels no more restrictive than before. Folding only ever
//     REMOVES variable reads and branches, so expression levels and
//     timing end-labels can only go down; the tests confirm
//     monotonicity on generated programs.
//
// Branches whose guards fold to constants are eliminated: the surviving
// arm was type-checked under a pc raised by the guard's level, which a
// constant makes ⊥, so it still checks in the enclosing context.
package opt

import (
	"repro/internal/lang/ast"
	"repro/internal/lang/token"
	"repro/internal/sem/core"
)

// Program optimizes prog in place (the AST is rewritten; declarations
// and mitigate identifiers are preserved) and reports how many
// expressions were folded and how many branches were eliminated.
func Program(prog *ast.Program) (folds, branches int) {
	o := &optimizer{}
	prog.Body = o.cmd(prog.Body)
	return o.folds, o.branches
}

type optimizer struct {
	folds    int
	branches int
}

// cmd rewrites one command, returning its replacement.
func (o *optimizer) cmd(c ast.Cmd) ast.Cmd {
	switch cm := c.(type) {
	case *ast.Seq:
		cm.First = o.cmd(cm.First)
		cm.Second = o.cmd(cm.Second)
		return cm
	case *ast.Skip:
		return cm
	case *ast.Assign:
		cm.X = o.expr(cm.X)
		return cm
	case *ast.Store:
		cm.Idx = o.expr(cm.Idx)
		cm.X = o.expr(cm.X)
		return cm
	case *ast.Sleep:
		cm.X = o.expr(cm.X)
		return cm
	case *ast.If:
		cm.Cond = o.expr(cm.Cond)
		cm.Then = o.cmd(cm.Then)
		cm.Else = o.cmd(cm.Else)
		if lit, ok := cm.Cond.(*ast.IntLit); ok {
			o.branches++
			if lit.Value != 0 {
				return cm.Then
			}
			return cm.Else
		}
		return cm
	case *ast.While:
		cm.Cond = o.expr(cm.Cond)
		cm.Body = o.cmd(cm.Body)
		if lit, ok := cm.Cond.(*ast.IntLit); ok && lit.Value == 0 {
			// while (0) never runs: replace with a skip that reuses
			// the loop's node identity and labels.
			o.branches++
			s := &ast.Skip{}
			s.TokPos = cm.TokPos
			s.NodeID = cm.NodeID
			s.Lab = cm.Lab
			return s
		}
		// A constant-true guard is left alone: the loop is the
		// program's (non-)termination behaviour, not dead code.
		return cm
	case *ast.Mitigate:
		cm.Init = o.expr(cm.Init)
		cm.Body = o.cmd(cm.Body)
		return cm
	}
	return c
}

// expr rewrites one expression bottom-up.
func (o *optimizer) expr(e ast.Expr) ast.Expr {
	switch ex := e.(type) {
	case *ast.IntLit, *ast.Var:
		return e
	case *ast.Index:
		ex.Idx = o.expr(ex.Idx)
		return ex
	case *ast.Unary:
		ex.X = o.expr(ex.X)
		if lit, ok := ex.X.(*ast.IntLit); ok {
			o.folds++
			switch ex.Op {
			case token.MINUS:
				return &ast.IntLit{TokPos: ex.TokPos, Value: -lit.Value}
			case token.NOT:
				v := int64(0)
				if lit.Value == 0 {
					v = 1
				}
				return &ast.IntLit{TokPos: ex.TokPos, Value: v}
			}
			o.folds-- // unknown operator: leave as is
		}
		return ex
	case *ast.Binary:
		ex.X = o.expr(ex.X)
		ex.Y = o.expr(ex.Y)
		lx, okx := ex.X.(*ast.IntLit)
		ly, oky := ex.Y.(*ast.IntLit)
		if okx && oky {
			o.folds++
			return &ast.IntLit{TokPos: ex.TokPos, Value: core.EvalBinop(ex.Op, lx.Value, ly.Value)}
		}
		return ex
	}
	return e
}

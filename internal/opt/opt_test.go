package opt

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/lang/ast"
	"repro/internal/lang/parser"
	"repro/internal/lang/printer"
	"repro/internal/lattice"
	"repro/internal/progen"
	"repro/internal/sem/core"
	"repro/internal/sem/mem"
	"repro/internal/types"
)

func parseCheck(t *testing.T, src string) (*ast.Program, *types.Result) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := types.Check(p, lattice.TwoPoint())
	if err != nil {
		t.Fatal(err)
	}
	return p, r
}

func TestConstantFolding(t *testing.T) {
	p, _ := parseCheck(t, "var x : L; x := 1 + 2 * 3 - -4;")
	folds, _ := Program(p)
	if folds < 3 {
		t.Errorf("folds = %d", folds)
	}
	a := p.Body.(*ast.Assign)
	lit, ok := a.X.(*ast.IntLit)
	if !ok || lit.Value != 11 {
		t.Errorf("folded expr = %v", printer.PrintExpr(a.X))
	}
}

func TestNotFolding(t *testing.T) {
	p, _ := parseCheck(t, "var x : L; x := !(3 - 3);")
	Program(p)
	a := p.Body.(*ast.Assign)
	if lit, ok := a.X.(*ast.IntLit); !ok || lit.Value != 1 {
		t.Errorf("folded = %v", printer.PrintExpr(a.X))
	}
}

func TestBranchElimination(t *testing.T) {
	p, _ := parseCheck(t, `
var x : L;
if (2 > 1) { x := 10; } else { x := 20; }
if (0) { x := 30; } else { x := 40; }
while (1 - 1) { x := 50; }
`)
	_, branches := Program(p)
	if branches != 3 {
		t.Errorf("branches eliminated = %d, want 3", branches)
	}
	out := printer.Print(p, printer.Options{})
	if strings.Contains(out, "if") || strings.Contains(out, "while") {
		t.Errorf("constant branches survive:\n%s", out)
	}
	if strings.Contains(out, "x := 20") || strings.Contains(out, "x := 30") ||
		strings.Contains(out, "x := 50") {
		t.Errorf("dead arms survive:\n%s", out)
	}
}

func TestInfiniteLoopPreserved(t *testing.T) {
	p, _ := parseCheck(t, "var x : L; while (1) { x := x + 1; }")
	Program(p)
	out := printer.Print(p, printer.Options{})
	if !strings.Contains(out, "while (1)") {
		t.Errorf("while (1) must be preserved:\n%s", out)
	}
}

func TestVariablesBlockFolding(t *testing.T) {
	p, _ := parseCheck(t, "var a : L; var x : L; x := a + 0;")
	folds, _ := Program(p)
	// a + 0 is NOT folded: only all-constant operands fold (algebraic
	// identities would silently drop a machine-environment read).
	if folds != 0 {
		t.Errorf("folds = %d, want 0", folds)
	}
}

// Optimized programs compute exactly the same values as the originals,
// over generated programs and random inputs.
func TestSemanticPreservationOnGenerated(t *testing.T) {
	lat := lattice.TwoPoint()
	r := rand.New(rand.NewSource(7))
	for seed := int64(0); seed < 25; seed++ {
		// Two independent copies of the same program: one optimized.
		mk := func() (*ast.Program, string) {
			prog, _, src, err := progen.GenerateTyped(progen.Config{
				Lat: lat, Seed: 2200 + seed, AllowMitigate: true, AllowSleep: true, MaxDepth: 4,
			}, 50)
			if err != nil {
				t.Fatal(err)
			}
			return prog, src
		}
		orig, src := mk()
		opt, _ := mk()
		Program(opt)

		inputs := func(m *mem.Memory) {
			for _, d := range orig.Decls {
				if d.IsArray {
					for i := int64(0); i < d.Size; i++ {
						m.SetEl(d.Name, i, int64(r.Intn(50)))
					}
				} else {
					m.Set(d.Name, int64(r.Intn(50)))
				}
			}
		}
		m1 := mem.New(orig)
		inputs(m1)
		m2 := m1.Clone()
		k1 := core.New(orig, m1)
		k2 := core.New(opt, m2)
		if err := k1.Run(2_000_000); err != nil {
			t.Fatal(err)
		}
		if err := k2.Run(2_000_000); err != nil {
			t.Fatal(err)
		}
		if !m1.Equal(m2) {
			t.Fatalf("seed %d: optimization changed the final memory\n%s", seed, src)
		}
		if !k1.Trace().ValuesEqual(k2.Trace()) {
			t.Fatalf("seed %d: optimization changed event values\n%s", seed, src)
		}
	}
}

// Optimized programs still type-check: folding removes reads and
// branches, which only lowers levels.
func TestTypabilityPreservedOnGenerated(t *testing.T) {
	lat := lattice.TwoPoint()
	for seed := int64(0); seed < 25; seed++ {
		prog, _, src, err := progen.GenerateTyped(progen.Config{
			Lat: lat, Seed: 3300 + seed, AllowMitigate: true, AllowSleep: true,
		}, 50)
		if err != nil {
			t.Fatal(err)
		}
		Program(prog)
		if _, err := types.Check(prog, lat); err != nil {
			t.Fatalf("seed %d: optimized program fails type checking: %v\n%s", seed, err, src)
		}
	}
}

// Optimization is idempotent.
func TestIdempotent(t *testing.T) {
	p, _ := parseCheck(t, `
var x : L;
if (1) { x := 2 + 3; } else { skip; }
`)
	Program(p)
	folds, branches := Program(p)
	if folds != 0 || branches != 0 {
		t.Errorf("second pass did work: %d folds, %d branches", folds, branches)
	}
}

// Idempotence over generated programs: after one optimization pass the
// program is a fixed point — a second pass reports zero folds and zero
// branch eliminations and leaves the printed program unchanged.
func TestIdempotentOnGenerated(t *testing.T) {
	lat := lattice.TwoPoint()
	for seed := int64(0); seed < 25; seed++ {
		prog, _, src, err := progen.GenerateTyped(progen.Config{
			Lat: lat, Seed: 4400 + seed, AllowMitigate: true, AllowSleep: true, MaxDepth: 4,
		}, 50)
		if err != nil {
			t.Fatal(err)
		}
		Program(prog)
		once := printer.Print(prog, printer.Options{})
		folds, branches := Program(prog)
		twice := printer.Print(prog, printer.Options{})
		if folds != 0 || branches != 0 {
			t.Fatalf("seed %d: second pass did work: %d folds, %d branches\n%s",
				seed, folds, branches, src)
		}
		if once != twice {
			t.Fatalf("seed %d: second pass changed the program\nonce:\n%s\ntwice:\n%s",
				seed, once, twice)
		}
	}
}

// Pass ordering: expressions are folded bottom-up BEFORE each branch
// decision, so guards that only become constant after folding (through
// unary operators and nested subexpressions) are eliminated in a
// single call — including branches nested inside eliminated arms.
func TestPassOrderingFoldsBeforeBranchElimination(t *testing.T) {
	p, _ := parseCheck(t, `
var x : L;
if (!(3 - 3)) {
    if (2 * 2 - 4) { x := 1; } else { x := 2; }
} else {
    x := 3;
}
`)
	folds, branches := Program(p)
	if branches != 2 {
		t.Errorf("branches eliminated = %d, want 2 (outer and nested)", branches)
	}
	if folds < 3 {
		t.Errorf("folds = %d, want at least 3 (two guards need folding first)", folds)
	}
	out := printer.Print(p, printer.Options{})
	if strings.Contains(out, "if") {
		t.Errorf("constant branches survive:\n%s", out)
	}
	if !strings.Contains(out, "x := 2") {
		t.Errorf("surviving arm lost:\n%s", out)
	}
	if strings.Contains(out, "x := 1") || strings.Contains(out, "x := 3") {
		t.Errorf("dead arms survive:\n%s", out)
	}
}

// Folding a mitigate's init expression keeps its identifier and level.
func TestMitigatePreserved(t *testing.T) {
	p, _ := parseCheck(t, `
var h : H;
mitigate@3 (16 * 4, H) [L,L] { sleep(h) [H,H]; }
`)
	folds, _ := Program(p)
	if folds != 1 {
		t.Errorf("folds = %d", folds)
	}
	m := p.Body.(*ast.Mitigate)
	if m.MitID != 3 {
		t.Error("mitigate id lost")
	}
	if lit, ok := m.Init.(*ast.IntLit); !ok || lit.Value != 64 {
		t.Errorf("init = %v", printer.PrintExpr(m.Init))
	}
}

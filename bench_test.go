// Benchmarks regenerating every table and figure of the paper's
// evaluation (§8), plus ablations of the design choices DESIGN.md calls
// out. Each experiment benchmark reports the paper's headline numbers
// as custom metrics (cycles, overhead ratios) so `go test -bench`
// output doubles as the reproduction record; EXPERIMENTS.md interprets
// them against the paper.
package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/apps/login"
	"repro/internal/apps/rsa"
	"repro/internal/bytecode"
	"repro/internal/experiments"
	"repro/internal/lang/ast"
	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/mitigation"
	"repro/internal/progen"
	"repro/internal/sem/core"
	"repro/internal/sem/full"
	"repro/internal/sem/mem"
	"repro/internal/server"
	"repro/internal/types"
)

// ---------------------------------------------------------------------------
// E1: Table 1 — the machine environment itself

func BenchmarkTable1MachineEnvironment(b *testing.B) {
	lat := lattice.TwoPoint()
	L, H := lat.Bot(), lat.Top()
	for _, mk := range []struct {
		name string
		env  hw.Env
	}{
		{"unpartitioned", hw.NewUnpartitioned(lat, hw.Table1Config())},
		{"nofill", hw.NewNoFill(lat, hw.Table1Config())},
		{"partitioned", hw.NewPartitioned(lat, hw.Table1Config())},
	} {
		b.Run(mk.name, func(b *testing.B) {
			env := mk.env
			var cycles uint64
			for i := 0; i < b.N; i++ {
				lv := L
				if i%3 == 0 {
					lv = H
				}
				cycles += env.Access(hw.Read, uint64(i*8)%(1<<18), lv, lv)
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "cycles/access")
		})
	}
}

// ---------------------------------------------------------------------------
// E2: Figure 7 — login time with various secrets

func BenchmarkFigure7LoginTiming(b *testing.B) {
	cfg := experiments.Figure7Config{
		App:         login.Config{TableSize: 40, WorkFactor: 120, WorkTableSize: 512},
		Attempts:    40,
		ValidCounts: []int{10, 20, 40},
	}
	var d *experiments.Figure7Data
	for i := 0; i < b.N; i++ {
		var err error
		d, err = experiments.Figure7(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Paper's claims as metrics: unmitigated valid/invalid separation
	// and mitigated coincidence (0 = coincide).
	um := d.Unmitigated[0]
	validAvg := avg(um.Times[:um.Valid])
	invalidAvg := avg(um.Times[um.Valid:])
	b.ReportMetric(float64(validAvg)/float64(invalidAvg), "unmit-valid/invalid")
	spread := 0.0
	for _, s := range d.Mitigated[1:] {
		for i := range s.Times {
			if s.Times[i] != d.Mitigated[0].Times[i] {
				spread++
			}
		}
	}
	b.ReportMetric(spread, "mitigated-divergent-points")
}

func avg(xs []uint64) uint64 {
	var s uint64
	for _, x := range xs {
		s += x
	}
	return s / uint64(len(xs))
}

// ---------------------------------------------------------------------------
// E3: Table 2 — login under nopar/moff/mon

func BenchmarkTable2LoginOptions(b *testing.B) {
	cfg := experiments.Table2Config{
		App:      login.Config{TableSize: 40, WorkFactor: 256, WorkTableSize: 1280},
		NumValid: 20,
		Attempts: 20,
	}
	var d *experiments.Table2Data
	for i := 0; i < b.N; i++ {
		var err error
		d, err = experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.OverheadValid(experiments.Moff), "moff-overhead")
	b.ReportMetric(d.OverheadValid(experiments.Mon), "mon-overhead")
	b.ReportMetric(float64(d.AvgValid[experiments.Mon])/float64(d.AvgInvalid[experiments.Mon]),
		"mon-valid/invalid")
}

// ---------------------------------------------------------------------------
// E4: Figure 8 — RSA decryption with two keys

func BenchmarkFigure8RSATiming(b *testing.B) {
	cfg := experiments.Figure8Config{
		App:      rsa.Config{MaxBlocks: 4, Modulus: 2147483647},
		Messages: 20,
		Blocks:   3,
	}
	var d *experiments.Figure8Data
	for i := 0; i < b.N; i++ {
		var err error
		d, err = experiments.Figure8(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	differ := 0.0
	for i := range d.Unmit1 {
		if d.Unmit1[i] != d.Unmit2[i] {
			differ++
		}
	}
	b.ReportMetric(differ/float64(len(d.Unmit1)), "unmit-key-distinguishable-frac")
	mitEqual := 1.0
	for i := range d.Mit1 {
		if d.Mit1[i] != d.Mit2[i] || d.Mit1[i] != d.Mit1[0] {
			mitEqual = 0
		}
	}
	b.ReportMetric(mitEqual, "mit-constant")
	b.ReportMetric(float64(d.Mit1[0]), "mit-cycles")
	b.ReportMetric(float64(d.Unmit1[0]), "unmit-cycles")
}

// ---------------------------------------------------------------------------
// E5: Figure 9 — language-level vs system-level mitigation

func BenchmarkFigure9MitigationComparison(b *testing.B) {
	cfg := experiments.Figure9Config{
		App:       rsa.Config{MaxBlocks: 8, Modulus: 2147483647},
		MaxBlocks: 8,
	}
	var d *experiments.Figure9Data
	for i := 0; i < b.N; i++ {
		var err error
		d, err = experiments.Figure9(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sumLang, sumSys, sumUnmit uint64
	for i := range d.Blocks {
		sumLang += d.LanguageLevel[i]
		sumSys += d.SystemLevel[i]
		sumUnmit += d.Unmitigated[i]
	}
	b.ReportMetric(float64(sumSys)/float64(sumLang), "system/language")
	b.ReportMetric(float64(sumLang)/float64(sumUnmit), "language/unmitigated")
}

// ---------------------------------------------------------------------------
// E6: leakage bounds

func BenchmarkLeakageBounds(b *testing.B) {
	cfg := experiments.LeakageConfig{
		App:    rsa.Config{MaxBlocks: 4, Modulus: 1000003},
		Blocks: 2,
	}
	var d *experiments.LeakageData
	for i := 0; i < b.N; i++ {
		var err error
		d, err = experiments.LeakageBounds(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.UnmitigatedQBits, "unmit-bits")
	b.ReportMetric(d.MitigatedQBits, "mit-bits")
	b.ReportMetric(d.BoundBits, "bound-bits")
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §4)

// BenchmarkAblationHardware compares the secure designs' cost on the
// same mitigated login workload: no-fill (cheap hardware, slow in high
// contexts) vs partitioned (the paper's design).
func BenchmarkAblationHardware(b *testing.B) {
	lat := lattice.TwoPoint()
	app, err := login.Build(login.Config{TableSize: 32, WorkFactor: 96, WorkTableSize: 512}, lat)
	if err != nil {
		b.Fatal(err)
	}
	creds := login.MakeCredentials(16)
	att := login.Attempt{User: creds[3].User, Pass: creds[3].Pass}
	for _, name := range []string{"nofill", "partitioned", "flush"} {
		name := name
		mk := func() hw.Env { return hw.MustEnv(name, lat, hw.Table1Config()) }
		b.Run(name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := app.Run(login.RunOptions{Env: mk(), Mitigate: false, Pred1: 1, Pred2: 1},
					creds, att)
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Clock
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "cycles/login")
		})
	}
}

// BenchmarkAblationSchemes compares the doubling scheme against the
// linear scheme on a workload with occasional slow requests: doubling
// pads more but mispredicts less.
func BenchmarkAblationSchemes(b *testing.B) {
	lat := lattice.TwoPoint()
	app, err := rsa.Build(rsa.Config{MaxBlocks: 4, Modulus: 1000003}, rsa.LanguageLevel, lat)
	if err != nil {
		b.Fatal(err)
	}
	msg := rsa.Message(3, 5)
	for _, scheme := range []mitigation.Scheme{
		mitigation.FastDoubling{}, mitigation.Linear{}, mitigation.SlowDoubling{Period: 4},
	} {
		b.Run(scheme.Name(), func(b *testing.B) {
			var cycles, misses uint64
			for i := 0; i < b.N; i++ {
				env := hw.NewPartitioned(lat, hw.Table1Config())
				m, err := full.New(app.Prog, app.Res, env, full.Options{Scheme: scheme})
				if err != nil {
					b.Fatal(err)
				}
				app.Setup(m.Memory(), int64(0x7FFF00FF)+int64(i%7), msg, 256)
				if err := m.Run(10_000_000); err != nil {
					b.Fatal(err)
				}
				cycles += m.Clock()
				for _, r := range m.Mitigations() {
					if r.Mispredicted {
						misses++
					}
				}
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "cycles/decrypt")
			b.ReportMetric(float64(misses)/float64(b.N), "mispredictions/decrypt")
		})
	}
}

// BenchmarkAblationPenaltyPolicies compares the per-level (paper),
// global, and per-site penalty policies on nested mitigation.
func BenchmarkAblationPenaltyPolicies(b *testing.B) {
	lat := lattice.TwoPoint()
	app, err := rsa.Build(rsa.Config{MaxBlocks: 6, Modulus: 1000003}, rsa.LanguageLevel, lat)
	if err != nil {
		b.Fatal(err)
	}
	msg := rsa.Message(6, 2)
	for _, pol := range []mitigation.Policy{mitigation.PerLevel, mitigation.Global, mitigation.PerSite} {
		b.Run(pol.String(), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				env := hw.NewPartitioned(lat, hw.Table1Config())
				m, err := full.New(app.Prog, app.Res, env, full.Options{Policy: pol})
				if err != nil {
					b.Fatal(err)
				}
				app.Setup(m.Memory(), 0x7FFFBEEF, msg, 128)
				if err := m.Run(10_000_000); err != nil {
					b.Fatal(err)
				}
				cycles += m.Clock()
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "cycles/decrypt")
		})
	}
}

// BenchmarkAblationServerSchemes runs a warm login server over a
// request sequence per scheme, reporting total time and how many
// distinct response durations (leakage surface) each schedule exposes.
func BenchmarkAblationServerSchemes(b *testing.B) {
	lat := lattice.TwoPoint()
	prog, res := mustServerProg(b)
	ctx := context.Background()
	for _, scheme := range []mitigation.Scheme{
		mitigation.FastDoubling{}, mitigation.Linear{}, mitigation.SlowDoubling{Period: 4},
	} {
		b.Run(scheme.Name(), func(b *testing.B) {
			var total uint64
			distinct := 0
			for i := 0; i < b.N; i++ {
				srv, err := server.New(prog, res, server.Options{
					Env:    hw.MustEnv("partitioned", lat, hw.Table1Config()),
					Scheme: scheme,
				})
				if err != nil {
					b.Fatal(err)
				}
				seen := map[uint64]bool{}
				for r := 0; r < 48; r++ {
					resp, err := srv.Handle(ctx, func(m *mem.Memory) { m.Set("h", int64(r*17%300)) })
					if err != nil {
						b.Fatal(err)
					}
					total += resp.Time
					seen[resp.Time] = true
				}
				distinct = len(seen)
			}
			b.ReportMetric(float64(total)/float64(b.N), "cycles/sequence")
			b.ReportMetric(float64(distinct), "distinct-durations")
		})
	}
}

// BenchmarkServerPool measures service throughput as shards are added:
// the same 64-request login-style workload through a serial server
// (workers=1) and sharded pools. Each shard owns partitioned hardware
// and mitigation state, so the work is embarrassingly parallel; req/s
// scales with worker count on multi-core hosts (wall-clock speedup is
// bounded by GOMAXPROCS — on a single-CPU box the interesting metric
// is that sharding adds no per-request cost).
func BenchmarkServerPool(b *testing.B) {
	lat := lattice.TwoPoint()
	prog, res := mustServerProg(b)
	ctx := context.Background()
	const nreq = 64
	reqs := make([]server.Request, nreq)
	for r := 0; r < nreq; r++ {
		s := int64(r*17) % 300
		reqs[r] = func(m *mem.Memory) { m.Set("h", s) }
	}
	for _, engine := range []string{"tree", "vm"} {
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("engine=%s/workers=%d", engine, workers), func(b *testing.B) {
				// The pool is built once and reused across iterations:
				// this measures steady-state request throughput, not
				// environment construction.
				// Queue depth covers the whole batch so the submitter
				// never parks on backpressure mid-burst; throughput then
				// reflects request processing, not goroutine handoff.
				pool, err := server.NewPool(prog, res, server.PoolOptions{
					Workers:    workers,
					QueueDepth: nreq,
					Options: server.Options{
						Env:    hw.MustEnv("partitioned", lat, hw.Table1Config()),
						Engine: engine,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer pool.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := pool.HandleAll(ctx, reqs); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(nreq)*float64(b.N)/b.Elapsed().Seconds(), "req/s")
			})
		}
	}
}

func mustServerProg(b *testing.B) (*ast.Program, *types.Result) {
	b.Helper()
	src := `
var h : H;
var reply : L;
mitigate (1, H) [L,L] {
    sleep(h % 300) [H,H];
}
reply := 1;
`
	prog, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	res, err := types.Check(prog, lattice.TwoPoint())
	if err != nil {
		b.Fatal(err)
	}
	return prog, res
}

// ---------------------------------------------------------------------------
// Infrastructure microbenchmarks

func BenchmarkInterpreterCore(b *testing.B) {
	prog, _, _, err := progen.GenerateTyped(progen.Config{
		Lat: lattice.TwoPoint(), Seed: 5, AllowMitigate: true, AllowSleep: true, MaxDepth: 4,
	}, 50)
	if err != nil {
		b.Fatal(err)
	}
	steps := 0
	for i := 0; i < b.N; i++ {
		k := core.New(prog, mem.New(prog))
		if err := k.Run(1_000_000); err != nil {
			b.Fatal(err)
		}
		steps += k.Steps()
	}
	b.ReportMetric(float64(steps)/float64(b.N), "steps/run")
}

func BenchmarkInterpreterFull(b *testing.B) {
	lat := lattice.TwoPoint()
	prog, res, _, err := progen.GenerateTyped(progen.Config{
		Lat: lat, Seed: 5, AllowMitigate: true, AllowSleep: true, MaxDepth: 4,
	}, 50)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		env := hw.NewPartitioned(lat, hw.Table1Config())
		m, err := full.New(prog, res, env, full.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Run(1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkImplementations compares the two language implementations —
// the tree-walking full semantics and the compiled bytecode VM — on the
// same program and hardware. Their simulated cycle counts differ (the
// VM fetches per instruction), which is the point: both satisfy the
// contract, with different timing.
func BenchmarkImplementations(b *testing.B) {
	lat := lattice.TwoPoint()
	prog, res, _, err := progen.GenerateTyped(progen.Config{
		Lat: lat, Seed: 5, AllowMitigate: true, AllowSleep: true, MaxDepth: 4,
	}, 50)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("tree-walker", func(b *testing.B) {
		var cycles uint64
		for i := 0; i < b.N; i++ {
			env := hw.NewPartitioned(lat, hw.Table1Config())
			m, err := full.New(prog, res, env, full.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Run(1_000_000); err != nil {
				b.Fatal(err)
			}
			cycles = m.Clock()
		}
		b.ReportMetric(float64(cycles), "simulated-cycles")
	})
	bc, err := bytecode.Compile(prog, res)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("bytecode-vm", func(b *testing.B) {
		var cycles uint64
		for i := 0; i < b.N; i++ {
			env := hw.NewPartitioned(lat, hw.Table1Config())
			vm := bytecode.NewVM(bc, env, bytecode.VMOptions{})
			if err := vm.Run(10_000_000); err != nil {
				b.Fatal(err)
			}
			cycles = vm.Clock()
		}
		b.ReportMetric(float64(cycles), "simulated-cycles")
	})
}

func BenchmarkTypeChecker(b *testing.B) {
	prog, _, _, err := progen.GenerateTyped(progen.Config{
		Lat: lattice.TwoPoint(), Seed: 9, AllowMitigate: true, MaxDepth: 4,
	}, 50)
	if err != nil {
		b.Fatal(err)
	}
	lat := lattice.TwoPoint()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := types.Check(prog, lat); err != nil {
			b.Fatal(err)
		}
	}
}

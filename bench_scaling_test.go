// BenchmarkPoolScaling is the multi-core scalability record for the
// sharded mitigation service: the same login-style workload through
// pools of 1, 2, 4, and 8 shards, for both execution engines, in two
// submission modes. `make bench-scaling` captures it (with -benchmem,
// so allocation regressions are visible) into BENCH_scaling.json, where
// benchjson derives speedup and scaling-efficiency
// (req/s at N workers ÷ N · req/s at 1 worker) per mode and engine.
//
// Wall-clock speedup is bounded by GOMAXPROCS — on a single-core host
// the meaningful result is that adding shards is close to free: the
// per-request pool-crossing cost (queue handoff, metrics, lifecycle)
// must not grow with shard count now that the submit path is
// lock-free and the metrics are striped per shard.
package repro

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/sem/mem"
	"repro/internal/server"
)

// scalingWorkers are the shard counts in the scaling matrix.
var scalingWorkers = []int{1, 2, 4, 8}

func BenchmarkPoolScaling(b *testing.B) {
	lat := lattice.TwoPoint()
	prog, res := mustServerProg(b)
	ctx := context.Background()
	const nreq = 64
	reqs := make([]server.Request, nreq)
	for r := 0; r < nreq; r++ {
		s := int64(r*17) % 300
		reqs[r] = func(m *mem.Memory) { m.Set("h", s) }
	}
	newPool := func(b *testing.B, engine string, workers int) *server.Pool {
		pool, err := server.NewPool(prog, res, server.PoolOptions{
			Workers:    workers,
			QueueDepth: nreq,
			Options: server.Options{
				Env:    hw.MustEnv("partitioned", lat, hw.Table1Config()),
				Engine: engine,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		return pool
	}
	for _, engine := range []string{"tree", "vm"} {
		for _, workers := range scalingWorkers {
			// Batch mode: one submitter drives whole bursts through
			// HandleAll — the amortized path, measuring shard-side
			// scaling with minimal submission overhead.
			b.Run(fmt.Sprintf("mode=batch/engine=%s/workers=%d", engine, workers),
				func(b *testing.B) {
					pool := newPool(b, engine, workers)
					defer pool.Close()
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						resps, err := pool.HandleAll(ctx, reqs)
						if err != nil {
							b.Fatal(err)
						}
						for _, r := range resps {
							server.ReleaseResponse(r)
						}
					}
					b.ReportMetric(float64(nreq)*float64(b.N)/b.Elapsed().Seconds(), "req/s")
				})
			// Submit mode: several concurrent submitters issue
			// independent Submit+Wait round-trips — the contended
			// path, measuring the lock-free submission fast path.
			b.Run(fmt.Sprintf("mode=submit/engine=%s/workers=%d", engine, workers),
				func(b *testing.B) {
					pool := newPool(b, engine, workers)
					defer pool.Close()
					b.ReportAllocs()
					b.SetParallelism(4) // 4·GOMAXPROCS submitter goroutines
					var next atomic.Int64
					b.ResetTimer()
					b.RunParallel(func(pb *testing.PB) {
						for pb.Next() {
							req := reqs[int(next.Add(1)-1)%nreq]
							resp, err := pool.Handle(ctx, req)
							if err != nil {
								b.Fatal(err)
							}
							server.ReleaseResponse(resp)
						}
					})
					b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
				})
		}
	}
}

// BenchmarkVMOpt is the bytecode-pipeline speedup record: the same
// compute-bound workload through vm-engine pools at optimization level
// 0 (stack interpreter) and 2 (register lowering + superinstruction
// fusion), across worker counts. `make bench-vmopt` captures it (with
// -benchmem, so the optimized loop's zero-allocation property is
// visible) into BENCH_vmopt.json, where benchjson derives the
// opt2-vs-opt0 throughput ratio per worker count.
//
// The workload is deliberately compute-heavy — a tight loop of
// fusable compare-and-branch, immediate arithmetic, and array traffic,
// with only a token mitigation — because the pipeline optimizes
// instruction dispatch: a mitigation-dominated program (like the
// scaling benchmark's) measures the mitigator, not the VM.
package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/lang/ast"
	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/sem/mem"
	"repro/internal/server"
	"repro/internal/types"
)

func mustComputeProg(b *testing.B) (*ast.Program, *types.Result) {
	b.Helper()
	src := `
var h : H;
var n : L;
var seed : L;
var acc : L;
var i : L;
var reply : L;
array tab[32] : L;
while (i < n) {
    acc := ((((((((((((((((((((((((((((((((acc * 31 + 7) % 8191) * 3 + 13) % 4093) * 17 + 3) % 2039) * 7 + 11) % 1021) * 23 + 5) % 509) * 13 + 37) % 251) * 11 + 17) % 127) * 9 + 1) % 8191) * 3 + 29) % 4093) * 5 + 7) % 2039) * 7 + 3) % 1021) * 9 + 5) % 509) * 19 + 23) % 8191) * 29 + 31) % 4093) * 37 + 41) % 2039) * 43 + 47) % 1021) + seed;
    i := i + 1;
}
tab[seed % 32] := acc;
acc := acc + tab[(seed + 7) % 32];
mitigate (1, H) [L,L] {
    sleep(h % 8) [H,H];
}
reply := acc;
`
	prog, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	res, err := types.Check(prog, lattice.TwoPoint())
	if err != nil {
		b.Fatal(err)
	}
	return prog, res
}

func BenchmarkVMOpt(b *testing.B) {
	lat := lattice.TwoPoint()
	prog, res := mustComputeProg(b)
	ctx := context.Background()
	const nreq = 64
	reqs := make([]server.Request, nreq)
	for r := 0; r < nreq; r++ {
		s := int64(r)
		reqs[r] = func(m *mem.Memory) {
			m.Set("n", 1500)
			m.Set("seed", s%13+1)
			m.Set("h", s*17%100)
		}
	}
	for _, opt := range []int{0, 2} {
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("opt=%d/workers=%d", opt, workers), func(b *testing.B) {
				pool, err := server.NewPool(prog, res, server.PoolOptions{
					Workers:    workers,
					QueueDepth: nreq,
					Options: server.Options{
						Env:      hw.MustEnv("partitioned", lat, hw.Table1Config()),
						Engine:   "vm",
						OptLevel: opt,
						OptSet:   true,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer pool.Close()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					resps, err := pool.HandleAll(ctx, reqs)
					if err != nil {
						b.Fatal(err)
					}
					for _, r := range resps {
						server.ReleaseResponse(r)
					}
				}
				b.ReportMetric(float64(nreq)*float64(b.N)/b.Elapsed().Seconds(), "req/s")
			})
		}
	}
}

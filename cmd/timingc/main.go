// Command timingc is the compiler driver and interpreter for the
// timing-channel language; see internal/cli for the implementation.
//
// Usage:
//
//	timingc check   [-lattice L] file
//	timingc fmt     [-lattice L] [-resolved] file
//	timingc run     [-lattice L] [-hw HW] [-mitigate] [-set x=v]... file
//	timingc serve   [-lattice L] [-hw HW] [-engine E] [-workers N] [-pprof ADDR] file
//	timingc verify  [-lattice L] [-hw HW] [-trials N] file
//	timingc certify [-seed N] [-full]                       (built-in sweep)
//	timingc certify [-var x] [-n N] [-engine E] [-hw HW] file
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Run(os.Args[1:], os.Stdout, os.Stderr))
}

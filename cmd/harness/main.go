// Command harness regenerates every table and figure of the paper's
// evaluation section (§8) and the leakage-bound experiment.
//
// Usage:
//
//	harness [-experiment all|table1|figure7|table2|figure8|figure9|leakage|service|faults|network]
//	        [-quick] [-format text|json|csv]
//
// The text format is the human-readable table; json and csv emit the
// raw data for external plotting (table1 is text-only).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	which := flag.String("experiment", "all",
		"experiment to run: all, table1, figure7, table2, figure8, figure9, leakage, service, faults, network")
	quick := flag.Bool("quick", false, "reduced-scale run (faster)")
	format := flag.String("format", "text", "output format: text, json, csv")
	parallel := flag.Bool("parallel", true, "fan independent figure7 probes across goroutines")
	plot := flag.Bool("plot", false, "render figures as ASCII charts (text format only)")
	engine := flag.String("engine", "tree", "execution engine for the service and network experiments: tree, vm")
	flag.Parse()

	switch *format {
	case "text", "json", "csv":
	default:
		fmt.Fprintf(os.Stderr, "harness: unknown format %q\n", *format)
		os.Exit(2)
	}

	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "harness: %s: %v\n", name, err)
		os.Exit(1)
	}

	emit := func(name, text string, data experiments.CSV) {
		switch *format {
		case "text":
			fmt.Print(text)
			fmt.Println()
		case "json":
			if err := experiments.WriteJSON(os.Stdout, data); err != nil {
				fail(name, err)
			}
		case "csv":
			if err := experiments.WriteCSV(os.Stdout, data); err != nil {
				fail(name, err)
			}
		}
	}

	want := func(name string) bool { return *which == "all" || *which == name }

	if want("table1") {
		if *format != "text" {
			fmt.Fprintln(os.Stderr, "harness: table1 is configuration; text only")
		} else {
			fmt.Print(experiments.Table1())
			fmt.Println()
		}
	}

	if want("figure7") {
		cfg := experiments.Figure7Config{}
		if *quick {
			cfg = cfg.Quick()
		}
		cfg.Parallel = *parallel
		d, err := experiments.Figure7(cfg)
		if err != nil {
			fail("figure7", err)
		}
		text := d.Render() + fig7Summary(d)
		if *plot {
			text = d.Plot() + fig7Summary(d)
		}
		emit("figure7", text, d)
	}

	if want("table2") {
		cfg := experiments.Table2Config{}
		if *quick {
			cfg = cfg.Quick()
		}
		d, err := experiments.Table2(cfg)
		if err != nil {
			fail("table2", err)
		}
		emit("table2", d.Render(), d)
	}

	if want("figure8") {
		cfg := experiments.Figure8Config{}
		if *quick {
			cfg = cfg.Quick()
		}
		d, err := experiments.Figure8(cfg)
		if err != nil {
			fail("figure8", err)
		}
		text := d.Render()
		if *plot {
			text = d.Plot()
		}
		emit("figure8", text, d)
	}

	if want("figure9") {
		cfg := experiments.Figure9Config{}
		if *quick {
			cfg = cfg.Quick()
		}
		d, err := experiments.Figure9(cfg)
		if err != nil {
			fail("figure9", err)
		}
		text := d.Render()
		if *plot {
			text = d.Plot()
		}
		emit("figure9", text, d)
	}

	if want("leakage") {
		cfg := experiments.LeakageConfig{}
		if *quick {
			cfg = cfg.Quick()
		}
		d, err := experiments.LeakageBounds(cfg)
		if err != nil {
			fail("leakage", err)
		}
		emit("leakage", d.Render(), d)
	}

	if want("service") {
		cfg := experiments.ServiceConfig{}
		if *quick {
			cfg = cfg.Quick()
		}
		cfg.Engine = *engine
		d, err := experiments.Service(cfg)
		if err != nil {
			fail("service", err)
		}
		emit("service", d.Render(), d)
	}

	if want("faults") {
		cfg := experiments.FaultsConfig{}
		if *quick {
			cfg = cfg.Quick()
		}
		d, err := experiments.Faults(cfg)
		if err != nil {
			fail("faults", err)
		}
		emit("faults", d.Render(), d)
	}

	if want("network") {
		cfg := experiments.NetworkConfig{}
		if *quick {
			cfg = cfg.Quick()
		}
		cfg.Engine = *engine
		d, err := experiments.Network(cfg)
		if err != nil {
			fail("network", err)
		}
		emit("network", d.Render(), d)
	}
}

// fig7Summary appends the qualitative check to the text rendering.
func fig7Summary(d *experiments.Figure7Data) string {
	allEqual := true
	for _, s := range d.Mitigated[1:] {
		for i := range s.Times {
			if s.Times[i] != d.Mitigated[0].Times[i] {
				allEqual = false
			}
		}
	}
	return fmt.Sprintf("mitigated curves coincide: %v\n", allEqual)
}

// Command harness regenerates every table and figure of the paper's
// evaluation section (§8) and the extended experiments (leakage
// bounds, service, faults, network, sessions).
//
// Usage:
//
//	harness [-experiment all|list|<name>] [-quick] [-format text|json|csv]
//	        [-parallel] [-plot] [-engine tree|vm] [-seed N]
//
// `-experiment list` prints the registered experiments with one-line
// summaries; the set is open — experiments self-register with
// experiments.Register, and this command has no per-experiment code.
// The text format is the human-readable table; json and csv emit the
// raw data for external plotting (text-only experiments, like table1,
// are skipped with a note under those formats).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	which := flag.String("experiment", "all",
		"experiment to run: all, list, or one of "+strings.Join(experiments.Names(), ", "))
	quick := flag.Bool("quick", false, "reduced-scale run (faster)")
	format := flag.String("format", "text", "output format: text, json, csv")
	parallel := flag.Bool("parallel", true, "fan independent probes across goroutines where supported")
	plot := flag.Bool("plot", false, "render figures as ASCII charts (text format only)")
	engine := flag.String("engine", "tree", "execution engine for service-backed experiments: tree, vm")
	seed := flag.Int64("seed", 0, "seed for randomized experiments (0 = experiment default)")
	flag.Parse()

	if *which == "list" {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.Name, e.Summary)
		}
		return
	}

	switch *format {
	case "text", "json", "csv":
	default:
		fmt.Fprintf(os.Stderr, "harness: unknown format %q\n", *format)
		os.Exit(2)
	}

	var run []experiments.Experiment
	if *which == "all" {
		run = experiments.All()
	} else {
		e, ok := experiments.Lookup(*which)
		if !ok {
			fmt.Fprintf(os.Stderr, "harness: unknown experiment %q (want all, list, or one of %s)\n",
				*which, strings.Join(experiments.Names(), ", "))
			os.Exit(2)
		}
		run = []experiments.Experiment{e}
	}

	opts := experiments.RunOptions{
		Quick:    *quick,
		Parallel: *parallel,
		Plot:     *plot,
		Engine:   *engine,
		Seed:     *seed,
	}
	for _, e := range run {
		rep, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "harness: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		switch *format {
		case "text":
			fmt.Print(rep.Text)
			fmt.Println()
		case "json":
			if rep.Data == nil {
				fmt.Fprintf(os.Stderr, "harness: %s is text-only\n", e.Name)
				continue
			}
			if err := experiments.WriteJSON(os.Stdout, rep.Data); err != nil {
				fmt.Fprintf(os.Stderr, "harness: %s: %v\n", e.Name, err)
				os.Exit(1)
			}
		case "csv":
			if rep.Data == nil {
				fmt.Fprintf(os.Stderr, "harness: %s is text-only\n", e.Name)
				continue
			}
			if err := experiments.WriteCSV(os.Stdout, rep.Data); err != nil {
				fmt.Fprintf(os.Stderr, "harness: %s: %v\n", e.Name, err)
				os.Exit(1)
			}
		}
	}
}

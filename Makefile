GO ?= go

.PHONY: all ci vet build test race bench harness quick clean

all: ci

# ci is the gate every change must pass: vet, build, and the race-
# enabled test suite (the pool's concurrency is exercised under -race).
ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

harness:
	$(GO) run ./cmd/harness -quick

quick: vet build test

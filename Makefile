GO ?= go

.PHONY: all ci vet build test race bench bench-engines engines harness quick clean

all: ci

# ci is the gate every change must pass: vet, build, the race-enabled
# test suite (the pool's concurrency is exercised under -race), and the
# engine differential suite, named explicitly so an engine-equivalence
# regression is called out even though the race run also covers it.
ci: vet build race engines

# engines runs the tree/VM differential tests: identical traces,
# clocks, mitigation records, and final memories across engines on the
# testdata corpus and generated programs.
engines:
	$(GO) test -run 'TestEngine|TestEngines' ./internal/exec ./internal/server

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

# bench-engines records the engine comparison into BENCH_engines.json:
# the sharded-server throughput matrix (3 runs for benchstat-style
# aggregation) plus the per-engine microbenchmarks, parsed by the
# benchjson tool (raw lines are kept verbatim in the JSON for
# benchstat).
bench-engines:
	{ $(GO) test -run '^$$' -bench BenchmarkServerPool -benchtime 2s -count 3 . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkEngine|BenchmarkProgramCache' -benchtime 1s ./internal/exec ; } \
	  | tee bench_engines.txt | $(GO) run ./internal/tools/benchjson -o BENCH_engines.json
	@rm -f bench_engines.txt
	@echo wrote BENCH_engines.json

harness:
	$(GO) run ./cmd/harness -quick

quick: vet build test

GO ?= go
FUZZTIME ?= 30s

.PHONY: all ci vet build test race bench bench-smoke bench-engines bench-scaling bench-sessions bench-vmopt bench-transport profile engines chaos fuzz-smoke smoke-serve certify certify-smoke cover harness quick clean

all: ci

# ci is the gate every change must pass: vet, build, the race-enabled
# test suite (the pool's concurrency is exercised under -race), the
# engine differential suite (named explicitly so an engine-equivalence
# regression is called out even though the race run also covers it),
# the chaos suite under randomized fault schedules, a short continuous
# fuzz of each native fuzz target, a 1x-benchtime smoke run of
# every benchmark so benchmark code cannot rot uncompiled or uncovered,
# and an end-to-end drive of the HTTP service through the real binary.
ci: vet build race engines chaos certify-smoke fuzz-smoke bench-smoke smoke-serve

# engines runs the tree/VM differential tests: identical traces,
# clocks, mitigation records, and final memories across engines on the
# testdata corpus and generated programs.
engines:
	$(GO) test -run 'TestEngine|TestEngines' ./internal/exec ./internal/server

# chaos runs the fault-injection suite under the race detector: 100
# randomized fault schedules plus the breaker, deadline, crosstalk, and
# determinism regressions.
chaos:
	$(GO) test -race -count 1 -run 'TestChaos|TestBreaker|TestDeadline|TestCancelled|TestSameSeed|TestInjected' ./internal/server

# fuzz-smoke runs each native fuzz target for FUZZTIME (default 30s) of
# continuous mutation on top of the checked-in seed corpora
# (regenerate those with `go run ./internal/tools/genfuzzcorpus`).
fuzz-smoke:
	$(GO) test -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/lang/parser
	$(GO) test -fuzz FuzzDecode -fuzztime $(FUZZTIME) ./internal/bytecode
	$(GO) test -fuzz FuzzOptTraceIdentity -fuzztime $(FUZZTIME) ./internal/bytecode/optimize
	$(GO) test -fuzz FuzzWireCodecIdentity -fuzztime $(FUZZTIME) ./internal/transport/wire/fastjson

# smoke-serve builds the real timingc binary, serves the HTTP/JSON API
# on an ephemeral port, drives it through the client SDK (health, a
# 100-request batch, metrics in both formats, a pipelined /v1/stream
# exchange), and checks that SIGINT mid-stream drains cleanly: the
# open stream gets a terminal shutting_down line before the exit.
smoke-serve:
	$(GO) run ./internal/tools/smokeserve

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# -shuffle=on randomizes test (and subtest) execution order so
# inter-test state dependence cannot hide; the seed is printed on
# failure for replay with -shuffle=<seed>.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

bench:
	$(GO) test -bench . -benchtime 1x -benchmem -run ^$$ .

# bench-smoke executes every benchmark in the repository exactly once —
# a compile-and-run check for ci, not a measurement.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -benchmem -run ^$$ ./...

# bench-engines records the engine comparison into BENCH_engines.json:
# the sharded-server throughput matrix (3 runs for benchstat-style
# aggregation) plus the per-engine microbenchmarks, parsed by the
# benchjson tool (raw lines are kept verbatim in the JSON for
# benchstat).
bench-engines:
	{ $(GO) test -run '^$$' -bench BenchmarkServerPool -benchtime 2s -count 3 . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkEngine|BenchmarkProgramCache' -benchtime 1s ./internal/exec ; } \
	  | tee bench_engines.txt | $(GO) run ./internal/tools/benchjson -o BENCH_engines.json
	@rm -f bench_engines.txt
	@echo wrote BENCH_engines.json

# bench-scaling records the multi-core scaling matrix (workers 1-8 ×
# both engines × batch/submit modes, 3 runs each, with -benchmem so
# allocation regressions are visible) into BENCH_scaling.json, where
# benchjson derives per-group speedup and scaling efficiency
# (req/s at N workers ÷ N·req/s at 1).
bench-scaling:
	$(GO) test -run '^$$' -bench BenchmarkPoolScaling -benchtime 2s -count 3 -benchmem . \
	  | tee bench_scaling.txt | $(GO) run ./internal/tools/benchjson -o BENCH_scaling.json
	@rm -f bench_scaling.txt
	@echo wrote BENCH_scaling.json

# bench-sessions records the tenant-session manager's admission hot
# path into BENCH_sessions.json: working sets of 1/100/10k tenants,
# LRU eviction churn, and budget-checked admission, 3 runs each.
# (ci's bench-smoke already executes these once per run, so the
# benchmark code cannot rot; this target is the measurement.)
bench-sessions:
	$(GO) test -run '^$$' -bench BenchmarkSessionManager -benchtime 2s -count 3 -benchmem ./internal/session \
	  | tee bench_sessions.txt | $(GO) run ./internal/tools/benchjson -o BENCH_sessions.json
	@rm -f bench_sessions.txt
	@echo wrote BENCH_sessions.json

# bench-vmopt records the bytecode-pipeline speedup into
# BENCH_vmopt.json: the vm engine at optimization level 0 (stack
# interpreter) vs 2 (register lowering + superinstruction fusion) on a
# compute-bound workload across 1/2/4 workers, 3 runs each with
# -benchmem so the optimized loop's zero-allocation property is on
# record. benchjson derives the opt2-vs-opt0 throughput ratio per
# worker count. (ci's bench-smoke executes the benchmark once per run,
# so it cannot rot; this target is the measurement.)
bench-vmopt:
	$(GO) test -run '^$$' -bench BenchmarkVMOpt -benchtime 2s -count 3 -benchmem . \
	  | tee bench_vmopt.txt | $(GO) run ./internal/tools/benchjson -o BENCH_vmopt.json
	@rm -f bench_vmopt.txt
	@echo wrote BENCH_vmopt.json

# bench-transport records the wire fast-path matrix into
# BENCH_transport.json: {std, fast} codec × {run, batch, stream}
# submission modes over loopback HTTP, 3 runs each with -benchmem so
# the fast path's allocation profile is on record. benchjson derives
# the fast-vs-std speedup per mode and the headline
# fastpath_stream_vs_std_run ratio (the ≥3× submit-path target).
# (ci's bench-smoke executes the benchmark once per run, so it cannot
# rot; this target is the measurement.)
bench-transport:
	$(GO) test -run '^$$' -bench BenchmarkTransport -benchtime 2s -count 3 -benchmem ./internal/transport \
	  | tee bench_transport.txt | $(GO) run ./internal/tools/benchjson -o BENCH_transport.json
	@rm -f bench_transport.txt
	@echo wrote BENCH_transport.json

# certify runs the FULL adversarial leakage-certification matrix —
# {tree, vm-opt0, vm-opt2} × {partitioned, nopar} × {mitigated,
# unmitigated} × {login, rsa, sleep, progen corpus} across the engine,
# pool, and HTTP bindings — fails if any mitigated row's measured
# leakage upper bound exceeds its reported §7 bound (or if no insecure
# baseline measurably leaks), and records the matrix into
# BENCH_certify.json. Same seed ⇒ byte-identical output.
certify:
	$(GO) run ./internal/tools/certifybench -seed 1 > bench_certify.txt
	$(GO) run ./internal/tools/benchjson -o BENCH_certify.json < bench_certify.txt
	@rm -f bench_certify.txt
	@echo wrote BENCH_certify.json

# certify-smoke is the ci slice of the matrix: every binding and both
# verdict polarities, seconds not minutes.
certify-smoke:
	$(GO) run ./internal/tools/certifybench -seed 1 -quick > /dev/null

# cover enforces the certification harness's coverage floor: the
# package that asserts the security claim must itself be ≥ 85%
# statement-covered, so a rotted assertion cannot hide.
cover:
	$(GO) test -coverprofile=cover_certify.out ./internal/certify
	@$(GO) tool cover -func=cover_certify.out | awk '/^total:/ { sub(/%/, "", $$3); \
	  if ($$3 + 0 < 85.0) { printf "FAIL: internal/certify coverage %.1f%% below the 85%% floor\n", $$3; exit 1 } \
	  else { printf "internal/certify coverage %.1f%% (floor 85%%)\n", $$3 } }'
	@rm -f cover_certify.out

# profile captures a CPU profile of the scaling benchmark's vm-engine
# hot path; inspect with `go tool pprof repro.test cpu.prof`.
profile:
	$(GO) test -run '^$$' -bench 'BenchmarkPoolScaling/mode=batch/engine=vm/workers=4$$' \
	  -benchtime 3s -cpuprofile cpu.prof -o repro.test .
	@echo "wrote cpu.prof; inspect with: $(GO) tool pprof repro.test cpu.prof"

harness:
	$(GO) run ./cmd/harness -quick

quick: vet build test

clean:
	rm -f cpu.prof repro.test bench_engines.txt bench_scaling.txt bench_sessions.txt bench_vmopt.txt bench_transport.txt bench_certify.txt cover_certify.out

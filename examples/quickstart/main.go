// The quickstart example walks the full pipeline on a tiny program:
// parse → infer timing labels → type-check → execute on simulated
// partitioned hardware — first demonstrating the timing channel the
// type system rejects, then the mitigated version it accepts, and
// finally that the mitigated program's timing is secret-independent.
package main

import (
	"fmt"
	"log"

	"repro/internal/lang/parser"
	"repro/internal/lang/printer"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/sem/full"
	"repro/internal/types"
)

// insecure leaks the secret h through the time at which the public
// variable done is assigned (sleep(h) taints timing at level H).
const insecure = `
var h : H;
var done : L;
sleep(h) [H,H];
done := 1;
`

// secure wraps the secret-dependent timing in a mitigate command, which
// bounds its leakage; the trailing public assignment then type-checks.
const secure = `
var h : H;
var done : L;
mitigate (64, H) [L,L] {
    sleep(h) [H,H];
}
done := 1;
`

func main() {
	lat := lattice.TwoPoint()

	// 1. The type system rejects the unmitigated program.
	prog, err := parser.Parse(insecure)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := types.Check(prog, lat); err == nil {
		log.Fatal("expected the insecure program to be rejected")
	} else {
		fmt.Println("insecure program rejected:")
		fmt.Printf("  %v\n\n", err)
	}

	// 2. The mitigated program type-checks; print it with the inferred
	// labels made explicit.
	prog, err = parser.Parse(secure)
	if err != nil {
		log.Fatal(err)
	}
	res, err := types.Check(prog, lat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mitigated program accepted; resolved labels:")
	fmt.Println(printer.Print(prog, printer.Options{ShowResolved: true, Indent: "  "}))

	// 3. Run it with two different secrets on partitioned hardware:
	// the observable event times coincide.
	for _, h := range []int64{3, 55} {
		env := hw.NewPartitioned(lat, hw.Table1Config())
		m, err := full.New(prog, res, env, full.Options{})
		if err != nil {
			log.Fatal(err)
		}
		m.Memory().Set("h", h)
		if err := m.Run(100000); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("secret h=%-3d -> events %v, mitigations %v, total %d cycles\n",
			h, m.Trace(), m.Mitigations(), m.Clock())
	}
	fmt.Println("\nthe adversary-visible assignment to done happens at the same " +
		"cycle for every secret: the channel is closed.")
}

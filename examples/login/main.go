// The login example plays the attacker of the paper's §8.3 case study
// (Bortz & Boneh's username-probing attack): it times login attempts
// against a server whose valid usernames are secret, first on an
// unmitigated server — where response times neatly classify usernames
// as valid or invalid — then on the mitigated server, where every probe
// costs the same.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/login"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
)

func main() {
	lat := lattice.TwoPoint()
	app, err := login.Build(login.Config{TableSize: 32, WorkFactor: 96, WorkTableSize: 256}, lat)
	if err != nil {
		log.Fatal(err)
	}
	newEnv := func() hw.Env { return hw.NewPartitioned(lat, hw.Table1Config()) }

	// The server's secret: 12 valid accounts out of a 32-entry table.
	secret := login.MakeCredentials(12)

	// The attacker probes 16 usernames; half exist. It does not know
	// the passwords, so every attempt fails — only timing talks.
	probes := login.MakeCredentials(16)

	p1, p2, err := app.SamplePredictions(newEnv, secret, []login.Attempt{
		{User: secret[11].User, Pass: "wrong"},
		{User: "no-such-user", Pass: "x"},
	})
	if err != nil {
		log.Fatal(err)
	}

	measure := func(mitigate bool) []uint64 {
		times := make([]uint64, len(probes))
		for i, p := range probes {
			res, err := app.Run(login.RunOptions{
				Env: newEnv(), Mitigate: mitigate, Pred1: p1, Pred2: p2,
			}, secret, login.Attempt{User: p.User, Pass: "guess"})
			if err != nil {
				log.Fatal(err)
			}
			t, err := login.ResponseTime(res)
			if err != nil {
				log.Fatal(err)
			}
			times[i] = t
		}
		return times
	}

	classify := func(times []uint64) {
		// The attacker thresholds at the midpoint of observed extremes.
		min, max := times[0], times[0]
		for _, t := range times {
			if t < min {
				min = t
			}
			if t > max {
				max = t
			}
		}
		threshold := (min + max) / 2
		correct := 0
		for i, t := range times {
			guessValid := t > threshold
			actuallyValid := i < 12
			mark := " "
			if guessValid == actuallyValid {
				correct++
				mark = "✓"
			}
			fmt.Printf("  probe %-9s time %6d  -> guess valid=%-5v %s\n",
				probes[i].User, t, guessValid, mark)
		}
		fmt.Printf("  attacker classified %d/%d usernames correctly\n\n", correct, len(times))
	}

	fmt.Println("UNMITIGATED server (timing leaks which usernames exist):")
	classify(measure(false))

	fmt.Println("MITIGATED server (predictive mitigation, sampled predictions):")
	classify(measure(true))
	fmt.Println("with mitigation every probe takes identical time; the attacker's")
	fmt.Println("threshold classifier degenerates to guessing.")
}

// The rsa example reproduces the §8.4 scenario interactively: the
// timing of square-and-multiply decryption depends on the private
// key's bit pattern (Kocher's attack), and an observer can even
// estimate the key's Hamming weight from decryption time. Per-block
// predictive mitigation makes decryption time exactly constant while
// staying proportional to the (public) message length.
package main

import (
	"fmt"
	"log"
	"math/bits"

	"repro/internal/apps/rsa"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
)

func main() {
	lat := lattice.TwoPoint()
	cfg := rsa.Config{MaxBlocks: 10, Modulus: 2147483647}
	app, err := rsa.Build(cfg, rsa.LanguageLevel, lat)
	if err != nil {
		log.Fatal(err)
	}
	newEnv := func() hw.Env { return hw.NewPartitioned(lat, hw.Table1Config()) }
	msg := rsa.Message(4, 7)

	keys := []int64{
		0x4000000000000001, // weight 2
		0x4000FF00FF000001, // weight 18
		0x7FFFFFFF00000001, // weight 33
		0x7FFFFFFFFFFFFFFF, // weight 63
	}

	fmt.Println("UNMITIGATED decryption: time grows with the key's Hamming weight")
	fmt.Printf("%-20s %8s %12s\n", "key", "weight", "cycles")
	for _, key := range keys {
		res, err := app.Run(newEnv(), key, msg, 1, false)
		if err != nil {
			log.Fatal(err)
		}
		t, err := rsa.ResponseTime(res)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%#-20x %8d %12d\n", uint64(key), bits.OnesCount64(uint64(key)), t)
	}

	// Sample a per-block prediction with the densest key so the
	// prediction covers the worst case (§8.2).
	pred, err := app.SamplePrediction(newEnv, keys[len(keys)-1:], [][]int64{rsa.Message(1, 1)})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nMITIGATED decryption (per-block prediction %d):\n", pred)
	fmt.Printf("%-20s %8s %12s\n", "key", "weight", "cycles")
	var first uint64
	for _, key := range keys {
		res, err := app.Run(newEnv(), key, msg, pred, true)
		if err != nil {
			log.Fatal(err)
		}
		t, err := rsa.ResponseTime(res)
		if err != nil {
			log.Fatal(err)
		}
		if first == 0 {
			first = t
		}
		fmt.Printf("%#-20x %8d %12d\n", uint64(key), bits.OnesCount64(uint64(key)), t)
		if t != first {
			log.Fatal("mitigated time varied with the key!")
		}
	}

	fmt.Println("\nmessage-length scaling stays public and unpadded:")
	fmt.Printf("%8s %12s\n", "blocks", "cycles")
	for n := 1; n <= 5; n++ {
		res, err := app.Run(newEnv(), keys[2], rsa.Message(n, 7), pred, true)
		if err != nil {
			log.Fatal(err)
		}
		t, err := rsa.ResponseTime(res)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12d\n", n, t)
	}
	fmt.Println("\ndecryption time is constant per key and linear in (public) message size.")
}

// The multilevel example exercises the paper's multilevel leakage
// theory (§6) on the lattice L ⊑ M ⊑ H: the quantitative measure Q
// distinguishes which *levels* leak to which adversaries. A program
// whose timing depends on an H secret leaks from {H} to L — boundedly,
// via mitigation — but leaks nothing from {M} to L, and an M-level
// adversary (who can read M data directly) learns only the same
// bounded H information.
package main

import (
	"fmt"
	"log"

	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/leakage"
	"repro/internal/machine/hw"
	"repro/internal/sem/mem"
	"repro/internal/types"
)

const src = `
var h : H;      // top secret
var m : M;      // confidential
var l : L;      // public

// Timing depends on h (mitigated) but never on m.
mitigate (64, H) [L,L] {
    sleep(h % 200) [H,H];
}
l := 1;
`

func main() {
	lat := lattice.ThreePoint()
	prog, err := parser.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := types.Check(prog, lat)
	if err != nil {
		log.Fatal(err)
	}
	L := lat.Bot()
	M, _ := lat.Lookup("M")
	H, _ := lat.Lookup("H")

	newEnv := func() hw.Env { return hw.NewPartitioned(lat, hw.Table1Config()) }

	measure := func(from lattice.Label, adversary lattice.Label, secrets []leakage.Secret) *leakage.Measurement {
		meas, err := leakage.Measure(leakage.Config{
			Prog:      prog,
			Res:       res,
			NewEnv:    newEnv,
			Adversary: adversary,
			From:      []lattice.Label{from},
		}, secrets)
		if err != nil {
			log.Fatal(err)
		}
		return meas
	}

	// Vary h over a wide range (several mitigation buckets).
	hSecrets := []leakage.Secret{}
	for _, v := range []int64{0, 30, 60, 90, 120, 150, 180, 199} {
		v := v
		hSecrets = append(hSecrets, func(mm *mem.Memory) { mm.Set("h", v) })
	}
	// Vary m only.
	mSecrets := []leakage.Secret{}
	for _, v := range []int64{1, 2, 3, 4, 5, 6, 7, 8} {
		v := v
		mSecrets = append(mSecrets, func(mm *mem.Memory) { mm.Set("m", v) })
	}

	qHtoL := measure(H, L, hSecrets)
	qMtoL := measure(M, L, mSecrets)

	fmt.Println("program under test:")
	fmt.Print(src)
	fmt.Printf("leakage {H} -> L adversary: %.2f bits over %d secrets (Theorem 2 cap %.2f bits)\n",
		qHtoL.QBits, qHtoL.Trials, qHtoL.VBits)
	fmt.Printf("leakage {M} -> L adversary: %.2f bits over %d secrets\n",
		qMtoL.QBits, qMtoL.Trials)
	fmt.Printf("analytic §7 bound for the H flow: %.2f bits (K=%d, T=%d)\n\n",
		leakage.BoundForMeasurement(qHtoL, len(lattice.UpwardClosure(lat, []lattice.Label{H}))),
		qHtoL.RelevantMitigates, qHtoL.MaxClock)

	if qMtoL.QBits != 0 {
		log.Fatal("unexpected: M leaked to L")
	}
	fmt.Println("the M level contributes zero timing leakage — exactly the fine-grained")
	fmt.Println("separation the paper's multilevel measure provides (its §6.2 example).")
}

// The hwverify example shows the hardware designer's workflow enabled
// by the paper's formal software–hardware contract (§3.5–3.6): plug a
// machine-environment model into the props checkers and test it
// against randomly generated well-typed programs. The example verifies
// the secure partitioned design and then a deliberately broken design
// — a cache whose miss latency depends on a global access counter that
// high accesses also bump — and shows which contract property catches
// the flaw.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/progen"
	"repro/internal/props"
)

// countingEnv wraps the secure partitioned design but makes every
// access cost depend on a global counter that all accesses — including
// confidential ones — increment. The counter is timing-relevant hidden
// state with no label: a contract violation.
type countingEnv struct {
	*hw.Partitioned
	counter uint64
}

func (c *countingEnv) Access(kind hw.AccessKind, addr uint64, er, ew lattice.Label) uint64 {
	c.counter++
	return c.Partitioned.Access(kind, addr, er, ew) + (c.counter & 1)
}

func (c *countingEnv) Clone() hw.Env {
	return &countingEnv{Partitioned: c.Partitioned.Clone().(*hw.Partitioned), counter: c.counter}
}

func (c *countingEnv) ProjEqual(o hw.Env, lv lattice.Label) bool {
	oc, ok := o.(*countingEnv)
	return ok && c.Partitioned.ProjEqual(oc.Partitioned, lv)
}

func (c *countingEnv) LowEqual(o hw.Env, lv lattice.Label) bool {
	oc, ok := o.(*countingEnv)
	return ok && c.Partitioned.LowEqual(oc.Partitioned, lv)
}

func main() {
	lat := lattice.TwoPoint()

	// Generate a pool of random well-typed programs to verify against.
	var checkers []*props.Checker
	for seed := int64(0); seed < 5; seed++ {
		prog, res, _, err := progen.GenerateTyped(progen.Config{
			Lat: lat, Seed: seed, AllowMitigate: true, AllowSleep: true,
		}, 50)
		if err != nil {
			log.Fatal(err)
		}
		checkers = append(checkers, &props.Checker{
			Prog: prog,
			Res:  res,
			Rand: rand.New(rand.NewSource(seed)),
		})
	}

	verify := func(name string, factory props.EnvFactory) {
		fmt.Printf("verifying %q against the software-hardware contract:\n", name)
		failures := 0
		for i, c := range checkers {
			c.NewEnv = factory
			checks := map[string]func() error{
				"P1 adequacy":        func() error { return c.CheckAdequacy(3) },
				"P2 determinism":     func() error { return c.CheckDeterminism(3) },
				"P5 write label":     func() error { return c.CheckWriteLabel(3) },
				"P6 read label":      func() error { return c.CheckReadLabel(60) },
				"P7 single-step NI":  func() error { return c.CheckSingleStepNI(20) },
				"T1 noninterference": func() error { return c.CheckNoninterference(3) },
			}
			for name, run := range checks {
				if err := run(); err != nil {
					fmt.Printf("  program %d: %-18s FAIL: %v\n", i, name, err)
					failures++
				}
			}
		}
		if failures == 0 {
			fmt.Println("  all checks passed")
		} else {
			fmt.Printf("  %d check(s) failed\n", failures)
		}
		fmt.Println()
	}

	verify("partitioned (the paper's §4.3 design)", func() hw.Env {
		return hw.NewPartitioned(lat, hw.TinyConfig())
	})
	verify("no-fill (the paper's §4.2 design)", func() hw.Env {
		return hw.NewNoFill(lat, hw.TinyConfig())
	})
	verify("counting cache (broken: unlabeled timing-relevant state)", func() hw.Env {
		return &countingEnv{Partitioned: hw.NewPartitioned(lat, hw.TinyConfig())}
	})
	fmt.Println("the broken design fails the read-label property (P6): its timing")
	fmt.Println("depends on machine state above the command's read label — the exact")
	fmt.Println("class of flaw the paper's contract is designed to expose.")
}

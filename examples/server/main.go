// The server example runs a long-lived mitigated service: requests
// share warm caches AND persistent mitigation state, so the prediction
// schedule is learned online — the first request mispredicts and
// inflates the schedule, after which every response takes identical
// time regardless of the secret. The total information exposed over
// the whole sequence is the handful of schedule steps, not one value
// per secret.
package main

import (
	"fmt"
	"log"

	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/sem/mem"
	"repro/internal/server"
	"repro/internal/types"
)

const service = `
var h : H;       // per-request secret (e.g. a lookup result)
var reply : L;   // public response; its timing is what clients see
mitigate (1, H) [L,L] {
    sleep(h % 500) [H,H];
}
reply := 1;
`

func main() {
	lat := lattice.TwoPoint()
	prog, err := parser.Parse(service)
	if err != nil {
		log.Fatal(err)
	}
	res, err := types.Check(prog, lat)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(prog, res, server.Options{
		Env: hw.NewPartitioned(lat, hw.Table1Config()),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("request  secret  time(cycles)  mispredictions")
	distinct := map[uint64]bool{}
	var resps []*server.Response
	for i := 0; i < 24; i++ {
		secret := int64(i*97) % 500
		resp, err := srv.Handle(func(m *mem.Memory) { m.Set("h", secret) })
		if err != nil {
			log.Fatal(err)
		}
		resps = append(resps, resp)
		distinct[resp.Time] = true
		fmt.Printf("%7d %7d %13d %15d\n", resp.Index, secret, resp.Time, resp.Mispredictions)
	}
	fmt.Printf("\nserver settled after request %d; %d distinct response times across %d secrets\n",
		server.SettledAfter(resps), len(distinct), len(resps))
	fmt.Println("the schedule learned the workload once, then every response was identical —")
	fmt.Println("total leakage over the whole sequence is bounded by the few schedule steps.")
}

// The server example runs a long-lived mitigated service: requests
// share warm caches AND persistent mitigation state, so the prediction
// schedule is learned online — the first request mispredicts and
// inflates the schedule, after which every response takes identical
// time regardless of the secret. The total information exposed over
// the whole sequence is the handful of schedule steps, not one value
// per secret.
//
// It then re-serves the same workload through a 4-worker sharded Pool:
// each shard owns its own partitioned hardware and mitigation state,
// so the per-shard leakage bound is the serial bound, and the
// instrumentation snapshot shows padding overhead and cache behavior.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/sem/mem"
	"repro/internal/server"
	"repro/internal/types"
)

const service = `
var h : H;       // per-request secret (e.g. a lookup result)
var reply : L;   // public response; its timing is what clients see
mitigate (1, H) [L,L] {
    sleep(h % 500) [H,H];
}
reply := 1;
`

func main() {
	lat := lattice.TwoPoint()
	prog, err := parser.Parse(service)
	if err != nil {
		log.Fatal(err)
	}
	res, err := types.Check(prog, lat)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	srv, err := server.New(prog, res, server.Options{
		Env: hw.MustEnv("partitioned", lat, hw.Table1Config()),
	})
	if err != nil {
		log.Fatal(err)
	}

	secret := func(i int) server.Request {
		s := int64(i*97) % 500
		return func(m *mem.Memory) { m.Set("h", s) }
	}

	fmt.Println("request  secret  time(cycles)  mispredictions")
	distinct := map[uint64]bool{}
	var resps []*server.Response
	for i := 0; i < 24; i++ {
		resp, err := srv.Handle(ctx, secret(i))
		if err != nil {
			log.Fatal(err)
		}
		resps = append(resps, resp)
		distinct[resp.Time] = true
		fmt.Printf("%7d %7d %13d %15d\n", resp.Index, int64(i*97)%500, resp.Time, resp.Mispredictions)
	}
	fmt.Printf("\nserver settled after request %d; %d distinct response times across %d secrets\n",
		server.SettledAfter(resps), len(distinct), len(resps))
	fmt.Println("the schedule learned the workload once, then every response was identical —")
	fmt.Println("total leakage over the whole sequence is bounded by the few schedule steps.")

	// The same workload through a sharded pool: every shard learns its
	// own schedule from its own subsequence, on its own hardware clone.
	pool, err := server.NewPool(prog, res, server.PoolOptions{
		Workers: 4,
		Options: server.Options{Env: hw.MustEnv("partitioned", lat, hw.Table1Config())},
	})
	if err != nil {
		log.Fatal(err)
	}
	var reqs []server.Request
	for i := 0; i < 24; i++ {
		reqs = append(reqs, secret(i))
	}
	if _, err := pool.HandleAll(ctx, reqs); err != nil {
		log.Fatal(err)
	}
	pool.Close()
	fmt.Printf("\npool served %d requests across %d shards; instrumentation snapshot:\n",
		pool.Served(), pool.Workers())
	fmt.Print(pool.Snapshot())
}

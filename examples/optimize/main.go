// The optimize example shows how compiler optimization interacts with
// the timing-channel discipline: constant folding and dead-branch
// elimination change a program's TIMING freely (timing belongs to the
// language implementation, which the machine-environment contract
// abstracts over), but preserve its observable values and its
// typability — and the mitigated program's security survives
// optimization unchanged.
package main

import (
	"fmt"
	"log"

	"repro/internal/lang/parser"
	"repro/internal/lang/printer"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/opt"
	"repro/internal/sem/full"
	"repro/internal/types"
)

const src = `
var h : H;
var key : H;
var out : L;
var done : L;

out := 2 * 3 + 4;
if (1 == 1) {
    out := out + 10 * 10;
} else {
    out := 0 - 999;
}
mitigate (256, H) [L,L] {
    if (h > 16 * 4) [H,H] {
        key := key + 1 [H,H];
    } else {
        sleep(h) [H,H];
    }
}
done := 1;
`

func run(label string, prog string, h int64) (uint64, int64) {
	lat := lattice.TwoPoint()
	p, err := parser.Parse(prog)
	if err != nil {
		log.Fatal(err)
	}
	r, err := types.Check(p, lat)
	if err != nil {
		log.Fatal(err)
	}
	if label == "optimized" || label == "optimized-quiet" {
		folds, branches := opt.Program(p)
		if _, err := types.Check(p, lat); err != nil {
			log.Fatalf("optimized program no longer type-checks: %v", err)
		}
		if label == "optimized" {
			fmt.Printf("  optimizer: %d folds, %d branches eliminated\n", folds, branches)
			fmt.Print("  optimized source:\n")
			fmt.Print(indent(printer.Print(p, printer.Options{})))
		}
	}
	m, err := full.New(p, r, hw.NewPartitioned(lat, hw.Table1Config()), full.Options{})
	if err != nil {
		log.Fatal(err)
	}
	m.Memory().Set("h", h)
	if err := m.Run(100000); err != nil {
		log.Fatal(err)
	}
	return m.Clock(), m.Memory().Get("out")
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}

func main() {
	fmt.Println("original program:")
	t1, v1 := run("original", src, 30)
	fmt.Printf("  h=30: out=%d, total %d cycles\n\n", v1, t1)

	fmt.Println("optimized program:")
	t2, v2 := run("optimized", src, 30)
	fmt.Printf("  h=30: out=%d, total %d cycles\n\n", v2, t2)

	if v1 != v2 {
		log.Fatal("optimization changed the computed value!")
	}
	fmt.Printf("values agree (%d); timing changed %d -> %d cycles — legal, because\n", v1, t1, t2)
	fmt.Println("timing is implementation-defined under the machine-environment contract.")

	// Security survives: the OPTIMIZED program's mitigated timing is
	// still secret-independent.
	ta, _ := run("optimized-quiet", src, 5)
	tb, _ := run("optimized-quiet", src, 200)
	if ta != tb {
		log.Fatal("mitigated timing depends on the secret!")
	}
	fmt.Println("and the mitigated program remains secret-independent after optimization.")
}
